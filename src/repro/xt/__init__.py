"""Xt Intrinsics: the toolkit layer Wafe's commands map onto.

Implements the X Toolkit object system the paper builds on: widget
classes with inherited resource lists, the Xrm resource database,
converters, translation tables and actions, callback lists, composite/
constraint geometry management, shells with popup grabs, and the
application context with its main loop, timeouts and alternate inputs.

The public names mirror the Xt concepts:

* :class:`~repro.xt.app.XtAppContext`
* :class:`~repro.xt.widget.Widget` / ``Composite`` / ``Constraint``
* :class:`~repro.xt.shell.ApplicationShell` and friends
* :class:`~repro.xt.xrm.XrmDatabase`
* :class:`~repro.xt.translations.TranslationTable`
* :class:`~repro.xt.callbacks.CallbackList`
"""

from repro.xt.app import XtAppContext
from repro.xt.callbacks import CallbackList
from repro.xt.eventcore import EventCore
from repro.xt.shell import (
    ApplicationShell,
    OverrideShell,
    Shell,
    TopLevelShell,
    TransientShell,
    GRAB_EXCLUSIVE,
    GRAB_NONE,
    GRAB_NONEXCLUSIVE,
)
from repro.xt.translations import TranslationTable, parse_translation_table
from repro.xt.widget import Composite, Constraint, Widget, WidgetError
from repro.xt.xrm import XrmDatabase

__all__ = [
    "XtAppContext",
    "CallbackList",
    "EventCore",
    "ApplicationShell",
    "OverrideShell",
    "Shell",
    "TopLevelShell",
    "TransientShell",
    "GRAB_EXCLUSIVE",
    "GRAB_NONE",
    "GRAB_NONEXCLUSIVE",
    "TranslationTable",
    "parse_translation_table",
    "Composite",
    "Constraint",
    "Widget",
    "WidgetError",
    "XrmDatabase",
]
