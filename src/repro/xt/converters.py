"""Resource converters: String -> typed value, and back for GetValues.

Converters are the Intrinsics extension point the paper leans on: Wafe
registers its Callback, Pixmap and XmString converters through exactly
this registry (``XtAppAddConverter`` in C).  Every converter takes the
widget (for context: display, font defaults) and the string; reverse
converters render a stored value back to a string for ``getValues``.
"""

from repro.tcl.errors import TclError
from repro.xlib import colors as _colors
from repro.xlib import fonts as _fonts
from repro.xt import resources as R


class ConversionError(TclError):
    """A resource value failed to convert."""


class ConverterRegistry:
    """String->type converters plus type->string reverse converters."""

    def __init__(self):
        self._to = {}
        self._back = {}
        register_standard_converters(self)

    def register(self, type_name, func, reverse=None):
        """Register ``func(widget, value) -> converted`` for a type."""
        self._to[type_name] = func
        if reverse is not None:
            self._back[type_name] = reverse

    def has(self, type_name):
        return type_name in self._to

    def convert(self, widget, type_name, value):
        if not isinstance(value, str):
            return value  # already typed (programmatic SetValues)
        func = self._to.get(type_name)
        if func is None:
            return value  # String-ish resource: keep as is
        return func(widget, value)

    def unconvert(self, widget, type_name, value):
        func = self._back.get(type_name)
        if func is None:
            if value is None:
                return ""
            if isinstance(value, bool):
                return "True" if value else "False"
            return str(value)
        return func(widget, value)


def _to_int(widget, value):
    try:
        return int(value.strip(), 0)
    except ValueError:
        raise ConversionError('cannot convert "%s" to Int' % value)


def _to_dimension(widget, value):
    number = _to_int(widget, value)
    if number < 0:
        raise ConversionError('cannot convert "%s" to Dimension' % value)
    return number


def _to_boolean(widget, value):
    lowered = value.strip().lower()
    if lowered in ("true", "yes", "on", "1"):
        return True
    if lowered in ("false", "no", "off", "0"):
        return False
    raise ConversionError('cannot convert "%s" to Boolean' % value)


def _to_pixel(widget, value):
    value = value.strip()
    if value.lower() == "xtdefaultforeground":
        return _colors.BLACK_PIXEL
    if value.lower() == "xtdefaultbackground":
        return _colors.WHITE_PIXEL
    try:
        return _colors.alloc_color(value)
    except _colors.ColorError as err:
        raise ConversionError(str(err))


def _pixel_to_string(widget, value):
    return "#%06X" % (int(value) & 0xFFFFFF)


def _to_font(widget, value):
    value = value.strip()
    if value.lower() == "xtdefaultfont":
        return _fonts.default_font()
    try:
        return _fonts.load_font(value)
    except _fonts.FontError as err:
        raise ConversionError(str(err))


def _font_to_string(widget, value):
    return value.name if isinstance(value, _fonts.Font) else str(value)


def _to_justify(widget, value):
    lowered = value.strip().lower()
    if lowered in ("left", "center", "right"):
        return lowered
    raise ConversionError('cannot convert "%s" to Justify' % value)


def _to_orientation(widget, value):
    lowered = value.strip().lower()
    if lowered in ("horizontal", "vertical"):
        return lowered
    raise ConversionError('cannot convert "%s" to Orientation' % value)


def _to_edit_mode(widget, value):
    lowered = value.strip().lower()
    mapping = {"read": "read", "edit": "edit", "append": "append",
               "textread": "read", "textedit": "edit",
               "textappend": "append"}
    if lowered in mapping:
        return mapping[lowered]
    raise ConversionError('cannot convert "%s" to EditMode' % value)


def _to_translations(widget, value):
    from repro.xt.translations import parse_translation_table

    return parse_translation_table(value)


def _translations_to_string(widget, value):
    return getattr(value, "source", str(value))


def _to_bitmap(widget, value):
    """The extended String-to-Bitmap converter: XBM first, then XPM."""
    from repro.xlib.xpm import read_image_file, ImageFormatError

    try:
        image, _kind = read_image_file(value.strip())
    except ImageFormatError as err:
        raise ConversionError(str(err))
    return image


def _to_float(widget, value):
    try:
        return float(value.strip())
    except ValueError:
        raise ConversionError('cannot convert "%s" to Float' % value)


def register_standard_converters(registry):
    registry.register(R.R_INT, _to_int)
    registry.register(R.R_POSITION, _to_int)
    registry.register(R.R_DIMENSION, _to_dimension)
    registry.register(R.R_BOOLEAN, _to_boolean)
    registry.register(R.R_PIXEL, _to_pixel, _pixel_to_string)
    registry.register(R.R_FONT, _to_font, _font_to_string)
    registry.register(R.R_JUSTIFY, _to_justify)
    registry.register(R.R_ORIENTATION, _to_orientation)
    registry.register(R.R_EDIT_MODE, _to_edit_mode)
    registry.register(R.R_TRANSLATIONS, _to_translations,
                      _translations_to_string)
    registry.register(R.R_ACCELERATORS, _to_translations,
                      _translations_to_string)
    registry.register(R.R_PIXMAP, _to_bitmap, lambda w, v: "<pixmap>")
    registry.register(R.R_BITMAP, _to_bitmap, lambda w, v: "<bitmap>")
    registry.register(R.R_FLOAT, _to_float)
