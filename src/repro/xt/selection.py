"""The Xt selection mechanism (XtOwnSelection / XtGetSelectionValue).

The Intrinsics' cut-and-paste layer: a widget owns a selection by
providing a convert procedure; requestors ask for a target type and get
the value delivered through a callback.  Wafe exposes this as the
``ownSelection`` / ``getSelectionValue`` / ``disownSelection`` commands.
"""


def own_selection(widget, selection, convert_func, lose_func=None):
    """Make ``widget`` the owner; ``convert_func(target) -> str``."""
    display = widget.display()

    def _convert(target):
        return convert_func(target)

    display.set_selection_owner(selection, widget.window, _convert)
    if lose_func is not None:
        widget._selection_lose = (selection, lose_func)
    return True


def disown_selection(widget, selection):
    display = widget.display()
    if display.get_selection_owner(selection) is widget.window:
        display.selections.pop(selection, None)


def get_selection_value(widget, selection, target, done_func):
    """Request a selection; ``done_func(value_or_None)`` fires when the
    SelectionNotify arrives (synchronously in the simulation)."""
    display = widget.display()
    display.convert_selection(selection, target, widget.window)
    # The simulated server answers immediately; find our notify.
    from repro.xlib import xtypes

    pending = []
    value = None
    answered = False
    while display.pending():
        event = display.next_event()
        if (event.type == xtypes.SelectionNotify
                and event.window is widget.window
                and event.selection == selection and not answered):
            value = event.data if event.property is not None else None
            answered = True
        else:
            pending.append(event)
    for event in pending:
        display.put_event(event)
    done_func(value)
    return value
