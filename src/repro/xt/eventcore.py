"""The unified event core: one selector, every readiness source.

Wafe's liveness promise (the paper's central claim: the GUI stays
responsive no matter what the application program does) used to rest on
three separate dispatch loops -- ``XtAppContext`` rebuilt fd lists
around a raw ``select.select`` every pass, the frontend ran a private
blocking ``select`` for its close drain, and the supervisor parked its
backoff timers in a sorted list.  :class:`EventCore` replaces all of
them: a single ``selectors.DefaultSelector`` (epoll/kqueue where the
platform has them) owns every fd watch, a monotonic-clock binary heap
owns every timer, and one dispatch path applies the same fault rules to
everything it calls.

Robustness-first design points (docs/ROBUSTNESS.md, "The event core"):

* **Monotonic timers.**  Deadlines come from ``time.monotonic`` via a
  heap -- wall-clock jumps (NTP steps, suspend/resume) cannot fire
  timers early or park them forever.  Removal is lazy (a tombstone in
  the id map), so ``remove_timer`` is O(1) and cancelled entries are
  discarded when they surface at the heap top.

* **Per-fd generation tokens.**  Every register/unregister on an fd
  bumps its generation.  ``poll`` snapshots the generation with each
  ready event and re-checks it at dispatch time, so a handler that
  closes a descriptor mid-batch -- even if the OS immediately recycles
  the number for an unrelated file -- can never cause a stale readiness
  event to fire on the new occupant.

* **EINTR / EBADF hardening.**  The wait primitives recompute their
  timeout from a monotonic deadline around ``InterruptedError`` (on top
  of PEP 475's automatic retry), so signal delivery can never extend a
  bounded wait.  A descriptor closed behind the core's back (EBADF from
  ``select``, or a silently-dropped epoll registration) is detected by
  :meth:`reap_dead_fds` and removed with the ``deadFdDrops`` leak
  counter bumped -- never an unhandled exception, never a spin.

* **Handler quarantine.**  Each fd watch carries a consecutive-failure
  strike count.  A handler that raises ``quarantine_strikes`` times in
  a row is unregistered (the firewall already contained each raise);
  the quarantine is reported and the embedder's ``on_quarantine`` hook
  fires (Wafe runs the ``onHandlerQuarantine`` script).  One broken
  handler ends up sidelined instead of monopolising the error channel
  forever.

* **Slow-handler watchdog.**  Every dispatch is timed.  When
  ``handler_time_limit_ms`` (the ``handlerTimeLimit`` resource) is set,
  a handler exceeding the budget is reported -- once per offending
  streak, so a consistently slow handler does not flood the log.

* **Accounting.**  Register/unregister/dispatch/error counters are
  kept for every source kind and surfaced as ``info eventstats``.

The previous raw-``select`` loop is retained behind
``EventCore(use_selectors=False)`` as an executable specification --
the same A/B hatch style as ``Interp(compile=False)`` and
``database.use_search_lists`` -- and benchmarks/bench_event_core.py
gates the selector path against it at 1k watched fds.
"""

import errno
import heapq
import os
import select
import selectors
import sys
import time as _time

_READ = 1
_WRITE = 2

#: Counter names, in the order ``stats()`` reports them.
_COUNTERS = (
    "registered", "unregistered", "dispatches", "timers_scheduled",
    "timers_fired", "timers_cancelled", "polls", "handler_errors",
    "quarantined", "slow_dispatches", "stale_skips", "dead_fd_drops",
    "leaked_watches", "eintr_retries", "accepts", "accept_failures",
)


def _fd_of(fileobj):
    """An int fd for anything add_reader/add_writer accepts."""
    if isinstance(fileobj, int):
        return fileobj
    return fileobj.fileno()


class _Watch:
    """One fd readiness registration."""

    __slots__ = ("watch_id", "fileobj", "fd", "mask", "callback", "label",
                 "strikes", "active", "slow_reported")

    def __init__(self, watch_id, fileobj, fd, mask, callback, label):
        self.watch_id = watch_id
        self.fileobj = fileobj
        self.fd = fd
        self.mask = mask
        self.callback = callback
        self.label = label
        self.strikes = 0
        self.active = True
        self.slow_reported = False

    @property
    def kind(self):
        return "input" if self.mask == _READ else "output"


class EventCore:
    """Readiness dispatch, timers, and work procs -- with fault rules."""

    #: Consecutive handler failures before an fd watch is quarantined.
    QUARANTINE_STRIKES = 3

    def __init__(self, use_selectors=True, clock=None):
        self.use_selectors = bool(use_selectors)
        self._clock = clock if clock is not None else _time.monotonic
        self._selector = (selectors.DefaultSelector()
                          if self.use_selectors else None)
        self._watches = {}        # watch_id -> _Watch
        self._fd_entries = {}     # fd -> {"r": [watches], "w": [watches]}
        self._fd_generation = {}  # fd -> int, bumped on register/unregister
        self._timers = []         # heap of (deadline, timer_id)
        self._timer_map = {}      # timer_id -> (callback, args, label)
        self._work_procs = []     # [(work_id, callback, label)]
        self._next_id = 1
        # Fault knobs (pushed from SupervisionConfig by the embedder).
        self.quarantine_strikes = self.QUARANTINE_STRIKES
        self.handler_time_limit_ms = 0
        # Hooks.  ``error_handler(context, exc)`` contains handler
        # exceptions (Wafe routes it through the Xt firewall);
        # ``report(message)`` carries quarantine/watchdog/leak
        # advisories; ``on_quarantine(kind, fd, label, strikes, exc)``
        # is the embedder-level quarantine hook.
        self.error_handler = None
        self.report = None
        self.on_quarantine = None
        self._counters = dict.fromkeys(_COUNTERS, 0)

    # ------------------------------------------------------------------
    # Introspection

    def backend_name(self):
        if not self.use_selectors:
            return "select"
        return "selectors:%s" % type(self._selector).__name__

    def has_sources(self):
        return bool(self._timer_map or self._watches or self._work_procs)

    def active_watches(self, mask=None):
        if mask is None:
            return len(self._watches)
        return sum(1 for w in self._watches.values() if w.mask == mask)

    def stats(self):
        """Counters + live state, for ``info eventstats``."""
        out = dict(self._counters)
        out["backend"] = self.backend_name()
        out["active_inputs"] = self.active_watches(_READ)
        out["active_outputs"] = self.active_watches(_WRITE)
        out["pending_timers"] = len(self._timer_map)
        out["work_procs"] = len(self._work_procs)
        out["handler_time_limit_ms"] = self.handler_time_limit_ms
        out["quarantine_strikes"] = self.quarantine_strikes
        return out

    def reset_stats(self):
        self._counters = dict.fromkeys(_COUNTERS, 0)

    # ------------------------------------------------------------------
    # Reporting

    def _report(self, message):
        if self.report is not None:
            try:
                self.report(message)
                return
            except Exception:  # noqa: BLE001 -- reporter of last resort
                pass
        sys.stderr.write("eventcore: %s\n" % message)

    def _contain(self, context, exc):
        if self.error_handler is not None:
            try:
                self.error_handler(context, exc)
                return
            except Exception:  # noqa: BLE001 -- handler of last resort
                pass
        self._report("unhandled exception in %s: %s: %s"
                     % (context, type(exc).__name__, exc))

    # ------------------------------------------------------------------
    # fd watches

    def _bump_generation(self, fd):
        self._fd_generation[fd] = self._fd_generation.get(fd, 0) + 1

    def _entry(self, fd):
        entry = self._fd_entries.get(fd)
        if entry is None:
            entry = self._fd_entries[fd] = {"r": [], "w": []}
        return entry

    def _entry_mask(self, entry):
        return (_READ if entry["r"] else 0) | (_WRITE if entry["w"] else 0)

    def _sync_selector(self, fd, entry, had_mask):
        """Mirror an entry's watch lists into the selector."""
        if self._selector is None:
            return
        mask = self._entry_mask(entry)
        sel_mask = ((selectors.EVENT_READ if mask & _READ else 0)
                    | (selectors.EVENT_WRITE if mask & _WRITE else 0))
        try:
            if had_mask == 0 and mask:
                self._selector.register(fd, sel_mask, fd)
            elif mask == 0 and had_mask:
                self._selector.unregister(fd)
            elif mask != had_mask:
                self._selector.modify(fd, sel_mask, fd)
        except (KeyError, ValueError, OSError):
            # The fd died (or was recycled) underneath us; the watch
            # bookkeeping stays consistent and reap_dead_fds collects
            # the corpse.
            pass

    def _purge_stale_watches(self, fd, fileobj):
        """Registering on a recycled descriptor number: watches left
        over from a *different* (now closed) file object on the same
        fd are corpses -- purge them so the old handlers can never fire
        against the new descriptor's traffic."""
        entry = self._fd_entries.get(fd)
        if entry is None:
            return
        for watch in entry["r"] + entry["w"]:
            if watch.fileobj is fileobj:
                continue
            if getattr(watch.fileobj, "closed", False):
                self.remove_watch(watch.watch_id)
                self._counters["dead_fd_drops"] += 1
                self._report(
                    "dropped stale %s watch%s on recycled fd %d"
                    % (watch.kind,
                       ' "%s"' % watch.label if watch.label else "",
                       fd))

    def _add_watch(self, fileobj, callback, mask, label):
        fd = _fd_of(fileobj)
        self._purge_stale_watches(fd, fileobj)
        watch = _Watch(self._next_id, fileobj, fd, mask, callback, label)
        self._next_id += 1
        entry = self._entry(fd)
        had_mask = self._entry_mask(entry)
        entry["r" if mask == _READ else "w"].append(watch)
        self._watches[watch.watch_id] = watch
        self._bump_generation(fd)
        self._sync_selector(fd, entry, had_mask)
        self._counters["registered"] += 1
        return watch.watch_id

    def add_reader(self, fileobj, callback, label=None):
        """Call ``callback(fileobj)`` whenever the fd is readable."""
        return self._add_watch(fileobj, callback, _READ, label)

    def add_writer(self, fileobj, callback, label=None):
        """Call ``callback(fileobj)`` whenever the fd is writable."""
        return self._add_watch(fileobj, callback, _WRITE, label)

    def remove_watch(self, watch_id):
        """Unregister a watch; safe no-op when already gone (double
        removal, removal from inside the watch's own handler, removal
        of a quarantined watch)."""
        watch = self._watches.pop(watch_id, None)
        if watch is None:
            return False
        watch.active = False
        entry = self._fd_entries.get(watch.fd)
        if entry is not None:
            had_mask = self._entry_mask(entry)
            slot = entry["r" if watch.mask == _READ else "w"]
            if watch in slot:
                slot.remove(watch)
            self._sync_selector(watch.fd, entry, had_mask)
            if not entry["r"] and not entry["w"]:
                del self._fd_entries[watch.fd]
        self._bump_generation(watch.fd)
        self._counters["unregistered"] += 1
        return True

    # ------------------------------------------------------------------
    # Timers (monotonic heap)

    def add_timer(self, interval_ms, callback, args=(), label=None):
        timer_id = self._next_id
        self._next_id += 1
        deadline = self._clock() + interval_ms / 1000.0
        heapq.heappush(self._timers, (deadline, timer_id))
        self._timer_map[timer_id] = (callback, tuple(args), label)
        self._counters["timers_scheduled"] += 1
        return timer_id

    def remove_timer(self, timer_id):
        """Cancel a timer; safe no-op when already fired or cancelled."""
        if self._timer_map.pop(timer_id, None) is None:
            return False
        self._counters["timers_cancelled"] += 1
        return True

    def next_deadline(self):
        """The earliest live deadline, or None (tombstones discarded)."""
        while self._timers and self._timers[0][1] not in self._timer_map:
            heapq.heappop(self._timers)
        return self._timers[0][0] if self._timers else None

    def pending_timers(self):
        """Live timers as (deadline, id, callback, args), soonest first
        (compatibility view for the old ``_timeouts`` list)."""
        out = []
        for deadline, timer_id in self._timers:
            info = self._timer_map.get(timer_id)
            if info is not None:
                out.append((deadline, timer_id, info[0], info[1]))
        out.sort(key=lambda t: (t[0], t[1]))
        return out

    def run_due_timers(self):
        """Fire every timer due *now* (one clock snapshot: a timer that
        reschedules itself at 0ms fires next pass, not in a tight
        loop).  Returns how many fired."""
        now = self._clock()
        fired = 0
        while True:
            deadline = self.next_deadline()
            if deadline is None or deadline > now:
                break
            __, timer_id = heapq.heappop(self._timers)
            callback, args, label = self._timer_map.pop(timer_id)
            self._counters["timers_fired"] += 1
            fired += 1
            self._invoke("timeout handler", label, callback, args)
        return fired

    # ------------------------------------------------------------------
    # Work procs

    def add_work_proc(self, callback, label=None):
        work_id = self._next_id
        self._next_id += 1
        self._work_procs.append((work_id, callback, label))
        return work_id

    def remove_work_proc(self, work_id):
        before = len(self._work_procs)
        self._work_procs = [w for w in self._work_procs if w[0] != work_id]
        return len(self._work_procs) != before

    def work_proc_entries(self):
        """Compatibility view: [(id, callback)]."""
        return [(wid, cb) for wid, cb, __ in self._work_procs]

    def run_one_work_proc(self):
        """Run the first work proc; True if one ran.  A raising work
        proc is removed, not retried -- left in place it would raise
        again on every idle pass."""
        if not self._work_procs:
            return False
        work_id, callback, label = self._work_procs[0]
        ok, done = self._invoke("work proc", label, callback, ())
        if not ok:
            done = True
        if done:
            self.remove_work_proc(work_id)
        return True

    # ------------------------------------------------------------------
    # Dispatch (the firewall + watchdog live here)

    def _invoke(self, context, label, callback, args):
        """Run one handler behind the firewall and the slow-handler
        watchdog.  Returns (ok, result)."""
        self._counters["dispatches"] += 1
        start = self._clock()
        try:
            result = callback(*args)
            ok = True
        except Exception as exc:  # noqa: BLE001 -- the firewall
            ok = False
            result = exc
            self._counters["handler_errors"] += 1
            self._contain(context, exc)
        limit_ms = self.handler_time_limit_ms
        if limit_ms and limit_ms > 0:
            elapsed_ms = (self._clock() - start) * 1000.0
            if elapsed_ms > limit_ms:
                self._counters["slow_dispatches"] += 1
                self._report(
                    "slow %s%s: %d ms (handlerTimeLimit %d ms)"
                    % (context,
                       ' "%s"' % label if label else "",
                       int(elapsed_ms), limit_ms))
        return ok, result

    def _dispatch_watch(self, watch):
        context = "%s handler" % watch.kind
        ok, result = self._invoke(context, watch.label, watch.callback,
                                  (watch.fileobj,))
        if ok:
            watch.strikes = 0
            return True
        watch.strikes += 1
        if watch.strikes >= self.quarantine_strikes:
            self._quarantine(watch, context, result)
        return False

    def _quarantine(self, watch, context, exc):
        self.remove_watch(watch.watch_id)
        self._counters["quarantined"] += 1
        self._report(
            "%s%s on fd %d quarantined after %d consecutive failures "
            "(%s: %s)"
            % (context,
               ' "%s"' % watch.label if watch.label else "",
               watch.fd, watch.strikes, type(exc).__name__, exc))
        if self.on_quarantine is not None:
            try:
                self.on_quarantine(watch.kind, watch.fd, watch.label,
                                   watch.strikes, exc)
            except Exception as hook_exc:  # noqa: BLE001 -- firewall
                self._contain("quarantine hook", hook_exc)

    # ------------------------------------------------------------------
    # Readiness

    def _sleep(self, timeout):
        """An EINTR-safe bounded sleep (no sources registered)."""
        deadline = self._clock() + timeout
        while True:
            remaining = deadline - self._clock()
            if remaining <= 0:
                return
            try:
                select.select([], [], [], remaining)
                return
            except InterruptedError:
                self._counters["eintr_retries"] += 1

    def _select_ready(self, timeout):
        """Wait for readiness; returns [(fd, mask, generation)] with the
        generation snapshotted at wait time (the fd-recycling guard)."""
        if self.use_selectors:
            try:
                events = self._selector.select(timeout)
            except InterruptedError:
                self._counters["eintr_retries"] += 1
                return []
            except OSError:
                self.reap_dead_fds()
                return []
            ready = []
            for key, sel_mask in events:
                mask = ((_READ if sel_mask & selectors.EVENT_READ else 0)
                        | (_WRITE if sel_mask & selectors.EVENT_WRITE
                           else 0))
                ready.append((key.fd, mask,
                              self._fd_generation.get(key.fd)))
            return ready
        # The executable spec: the historical select.select pass.
        read_fds = [fd for fd, e in self._fd_entries.items() if e["r"]]
        write_fds = [fd for fd, e in self._fd_entries.items() if e["w"]]
        if not read_fds and not write_fds:
            if timeout:
                self._sleep(timeout)
            return []
        try:
            readable, writable, __ = select.select(read_fds, write_fds, [],
                                                   timeout)
        except InterruptedError:
            self._counters["eintr_retries"] += 1
            return []
        except (OSError, ValueError):
            self.reap_dead_fds()
            return []
        ready = {}
        for fd in readable:
            ready[fd] = ready.get(fd, 0) | _READ
        for fd in writable:
            ready[fd] = ready.get(fd, 0) | _WRITE
        return [(fd, mask, self._fd_generation.get(fd))
                for fd, mask in ready.items()]

    def poll(self, timeout=0.0):
        """One readiness pass: wait up to ``timeout`` and dispatch every
        ready watch.  Returns how many handlers ran."""
        self._counters["polls"] += 1
        if not self._fd_entries:
            if timeout:
                self._sleep(timeout)
            return 0
        ready = self._select_ready(timeout)
        fired = 0
        for fd, mask, generation in ready:
            for flag, slot in ((_READ, "r"), (_WRITE, "w")):
                if not mask & flag:
                    continue
                # The generation re-check: a handler earlier in this
                # batch may have unregistered this fd (or closed it and
                # had the number recycled); the snapshot no longer
                # describes the current occupant.
                if self._fd_generation.get(fd) != generation:
                    self._counters["stale_skips"] += 1
                    continue
                entry = self._fd_entries.get(fd)
                if entry is None:
                    continue
                for watch in list(entry[slot]):
                    if not watch.active:
                        continue
                    fired += 1
                    self._dispatch_watch(watch)
        if fired == 0 and timeout and self._fd_entries:
            # A blocking poll that timed out with watches registered is
            # the moment to look for descriptors closed behind our back
            # (epoll drops them silently; they would otherwise pin the
            # loop open forever).
            self.reap_dead_fds()
        return fired

    def reap_dead_fds(self):
        """Drop watches whose descriptor is gone (closed without
        unregister).  Returns how many watches were dropped; each bumps
        the ``deadFdDrops`` leak counter and is reported."""
        dropped = 0
        for fd in list(self._fd_entries):
            entry = self._fd_entries.get(fd)
            if entry is None:
                continue
            dead = False
            watches = entry["r"] + entry["w"]
            for watch in watches:
                if getattr(watch.fileobj, "closed", False):
                    dead = True
                    break
            if not dead:
                try:
                    os.fstat(fd)
                except OSError:
                    dead = True
            if not dead:
                continue
            for watch in watches:
                self.remove_watch(watch.watch_id)
                dropped += 1
                self._counters["dead_fd_drops"] += 1
                self._report(
                    "dropped %s watch%s on dead fd %d "
                    "(closed without unregister)"
                    % (watch.kind,
                       ' "%s"' % watch.label if watch.label else "",
                       fd))
        return dropped

    def accept_connection(self, listen_socket):
        """One EINTR/EAGAIN-safe nonblocking ``accept``.

        Returns ``(conn, addr)`` with the connection already
        nonblocking, or None when nothing is actually there -- a
        spurious wakeup (EAGAIN), a connection aborted between poll and
        accept (ECONNABORTED, which BSD-style accept loops must
        swallow), or a transient kernel refusal.  Hard failures are
        counted and reported, never raised into the loop."""
        while True:
            try:
                conn, addr = listen_socket.accept()
            except InterruptedError:
                self._counters["eintr_retries"] += 1
                continue
            except BlockingIOError:
                return None
            except OSError as exc:
                if exc.errno in (errno.EAGAIN, errno.EWOULDBLOCK,
                                 errno.ECONNABORTED, errno.EPROTO):
                    return None
                self._counters["accept_failures"] += 1
                self._report("accept failed: %s" % exc)
                return None
            self._counters["accepts"] += 1
            conn.setblocking(False)
            return conn, addr

    # ------------------------------------------------------------------
    # Bounded waits and shutdown

    def wait_writable(self, fd, timeout):
        """Wait (EINTR-safe, monotonic-bounded) for ``fd`` to become
        writable.  Returns True when writable, False on deadline or on
        a dead descriptor.  This is the primitive the frontend's close
        drain uses instead of a private blocking ``select``."""
        deadline = self._clock() + max(0.0, timeout)
        while True:
            remaining = deadline - self._clock()
            if remaining <= 0:
                return False
            try:
                if self.use_selectors:
                    probe = selectors.DefaultSelector()
                    try:
                        probe.register(fd, selectors.EVENT_WRITE)
                        ready = probe.select(remaining)
                    finally:
                        probe.close()
                    if ready:
                        return True
                else:
                    __, writable, __ = select.select([], [fd], [],
                                                     remaining)
                    if writable:
                        return True
            except InterruptedError:
                self._counters["eintr_retries"] += 1
                continue
            except (OSError, ValueError):
                return False

    def shutdown(self, drain_timeout=0.5):
        """Graceful shutdown: give pending writer watches a bounded
        chance to drain, then unregister every remaining source.  Any
        watch still registered after the drain counts as leaked.  The
        core remains usable afterwards (a fresh selector is created),
        so an embedder can shut down one session and start another."""
        deadline = self._clock() + max(0.0, drain_timeout)
        progress = True
        while progress:
            progress = False
            writers = [watch for watch in list(self._watches.values())
                       if watch.mask == _WRITE and watch.active]
            if not writers:
                break
            for watch in writers:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                if (self.wait_writable(watch.fd, remaining)
                        and watch.active):
                    if self._dispatch_watch(watch):
                        progress = True
            if self._clock() >= deadline:
                break
        leaked = len(self._watches)
        if leaked:
            self._counters["leaked_watches"] += leaked
            self._report("%d watch%s still registered at shutdown"
                         % (leaked, "" if leaked == 1 else "es"))
        for watch_id in list(self._watches):
            self.remove_watch(watch_id)
        self._timers = []
        self._timer_map.clear()
        self._work_procs = []
        if self._selector is not None:
            try:
                self._selector.close()
            except OSError:
                pass
            self._selector = selectors.DefaultSelector()
        return leaked
