"""Shell widgets and the popup mechanism.

Shells are the widgets that talk to the window manager: every Wafe
program gets a ``topLevel`` ApplicationShell for free, extra
ApplicationShells can target other displays (the paper's
``applicationShell top2 dec4:0`` example), and popup shells paired with
the predefined callbacks (none/exclusive/nonexclusive/popdown/position/
positionCursor) implement menus and dialogs.
"""

from repro.xlib.display import open_display
from repro.xt import resources as R
from repro.xt.resources import res
from repro.xt.widget import Composite, WidgetError

GRAB_NONE = "none"
GRAB_NONEXCLUSIVE = "nonexclusive"
GRAB_EXCLUSIVE = "exclusive"


class Shell(Composite):
    """Base shell: one child, window-manager interaction."""

    CLASS_NAME = "Shell"
    IS_SHELL = True
    RESOURCES = [
        res("allowShellResize", R.R_BOOLEAN, True),
        res("overrideRedirect", R.R_BOOLEAN, False),
        res("saveUnder", R.R_BOOLEAN, False),
        res("createPopupChildProc", R.R_POINTER, None),
        res("popupCallback", R.R_CALLBACK),
        res("popdownCallback", R.R_CALLBACK),
        res("geometry", R.R_STRING, None),
    ]

    is_popup = False

    def __init__(self, name, parent, args=None, managed=True, app=None,
                 display_name=None):
        self._display = open_display(display_name) if display_name else None
        self.popped_up = False
        self.grab_kind = None
        super().__init__(name, parent, args=args, managed=managed, app=app)
        if parent is not None:
            # A shell under another widget is a popup shell: its
            # subtree realizes lazily on XtPopup.
            self.is_popup = True
            self.managed = False

    def preferred_size(self):
        width = self.resources["width"]
        height = self.resources["height"]
        managed = [c for c in self.children
                   if c.managed and not getattr(c, "is_popup", False)]
        if (width <= 0 or height <= 0) and managed:
            # Normally a shell holds one child; with several (legal in
            # Wafe scripts) it must still cover them all.
            need_w = need_h = 1
            for child in managed:
                cw, ch = child.preferred_size()
                border = 2 * child.resources["borderWidth"]
                need_w = max(need_w, child.resources["x"] + cw + border)
                need_h = max(need_h, child.resources["y"] + ch + border)
            width = width or need_w
            height = height or need_h
        return (max(1, width), max(1, height))

    def _parent_window(self):
        # Shell windows -- top-level and popup alike -- are children of
        # the root window, as under a real X server.
        return None

    def layout(self):
        """With one managed child, the child fills the shell; with
        several, children keep their sizes and the shell covers them."""
        managed = [c for c in self.children
                   if c.managed and not getattr(c, "is_popup", False)]
        if not managed or not self.realized or self.window is None:
            return
        if len(managed) == 1:
            child = managed[0]
            child.resources["x"] = 0
            child.resources["y"] = 0
            child.resources["width"] = self.window.width
            child.resources["height"] = self.window.height
            if child.window is not None:
                child.window.configure(x=0, y=0, width=self.window.width,
                                       height=self.window.height)
            return
        need_w, need_h = self.window.width, self.window.height
        for child in managed:
            width, height = child.preferred_size()
            child.resources["width"] = width
            child.resources["height"] = height
            if child.window is not None:
                child.window.configure(width=max(1, width),
                                       height=max(1, height))
            border = 2 * child.resources["borderWidth"]
            need_w = max(need_w, child.resources["x"] + width + border)
            need_h = max(need_h, child.resources["y"] + height + border)
        if self.resources["allowShellResize"] and (
                need_w > self.window.width or need_h > self.window.height):
            self.resources["width"] = need_w
            self.resources["height"] = need_h
            self.window.configure(width=need_w, height=need_h)

    def _apply_geometry_resource(self):
        """Honour the ``geometry`` resource (``WxH``, ``+X+Y`` or
        ``WxH+X+Y``) when the shell realizes.

        Shells -- popup shells especially -- often realize long after
        creation, so the value is re-queried through the search list,
        which revalidates against the database generation: a
        ``mergeResources`` issued between creation and realization
        still positions the shell.
        """
        geometry = self.resources.get("geometry")
        if geometry is None:
            geometry = self.app.query_resource(self, "geometry", "Geometry")
            if geometry is not None:
                self.resources["geometry"] = geometry
        if not geometry:
            return
        size, plus, offsets = geometry.partition("+")
        try:
            if size:
                w_text, __, h_text = size.partition("x")
                self.resources["width"] = int(w_text)
                self.resources["height"] = int(h_text)
            if plus:
                x_text, __, y_text = offsets.partition("+")
                self.resources["x"] = int(x_text)
                self.resources["y"] = int(y_text)
        except ValueError:
            pass  # a malformed geometry resource is ignored, as in Xt

    def realize(self):
        # Shells size themselves around their child before realizing.
        if not self.realized:
            self._apply_geometry_resource()
            width, height = self.preferred_size()
            self.resources["width"] = width
            self.resources["height"] = height
        super().realize()
        if self.window is not None:
            self.window.override_redirect = self.resources["overrideRedirect"]
            if not self.is_popup:
                # XtRealizeWidget maps a top-level shell immediately;
                # popup shells wait for XtPopup.
                self.window.map()

    def child_resized(self, child):
        """allowShellResize: grow the shell around its child, then make
        the child fill the shell again."""
        if self.window is None or not self.resources["allowShellResize"]:
            return
        border = 2 * child.resources.get("borderWidth", 0)
        grow_w = max(self.window.width, child.resources["width"] + border)
        grow_h = max(self.window.height, child.resources["height"] + border)
        if grow_w != self.window.width or grow_h != self.window.height:
            self.resources["width"] = grow_w
            self.resources["height"] = grow_h
            self.window.configure(width=grow_w, height=grow_h)
        self.layout()

    def popup(self, grab_kind=GRAB_NONE):
        """XtPopup: realize, map, and grab per kind."""
        if grab_kind not in (GRAB_NONE, GRAB_NONEXCLUSIVE, GRAB_EXCLUSIVE):
            raise WidgetError('unknown grab kind "%s"' % grab_kind)
        if not self.realized:
            self.realize()
            for child in self.children:
                if not child.realized:
                    child.realize()
        self.call_callbacks("popupCallback", grab_kind)
        self.popped_up = True
        self.grab_kind = grab_kind
        self.window.raise_window()
        self.window.map()
        for child in self.children:
            if child.managed and child.window is not None:
                child.window.map()
        if grab_kind in (GRAB_EXCLUSIVE, GRAB_NONEXCLUSIVE):
            self.display().grab_pointer(
                self.window, owner_events=(grab_kind == GRAB_NONEXCLUSIVE))
        return self

    def popdown(self):
        """XtPopdown: unmap and release grabs."""
        if not self.popped_up:
            return
        self.popped_up = False
        if self.grab_kind in (GRAB_EXCLUSIVE, GRAB_NONEXCLUSIVE):
            self.display().ungrab_pointer()
        self.grab_kind = None
        if self.window is not None:
            self.window.unmap()
        self.call_callbacks("popdownCallback")

    def move_to(self, x, y):
        """Position the shell (XtMoveWidget on a shell)."""
        self.resources["x"] = x
        self.resources["y"] = y
        if self.window is not None:
            self.window.configure(x=x, y=y)

    def position_under_cursor(self):
        display = self.display()
        self.move_to(display.pointer_x, display.pointer_y)


class OverrideShell(Shell):
    """Bypasses the window manager (menus)."""

    CLASS_NAME = "OverrideShell"
    RESOURCES = []

    def __init__(self, name, parent, args=None, managed=True, app=None,
                 display_name=None):
        super().__init__(name, parent, args=args, managed=managed, app=app,
                         display_name=display_name)
        self.resources["overrideRedirect"] = True


class WMShell(Shell):
    CLASS_NAME = "WMShell"
    RESOURCES = [
        res("title", R.R_STRING, None),
        res("iconName", R.R_STRING, None),
        res("minWidth", R.R_INT, 1),
        res("minHeight", R.R_INT, 1),
        res("input", R.R_BOOLEAN, True),
    ]


class TransientShell(WMShell):
    """Dialogs: transient for another shell."""

    CLASS_NAME = "TransientShell"
    RESOURCES = [res("transientFor", R.R_WIDGET, None)]


class TopLevelShell(WMShell):
    CLASS_NAME = "TopLevelShell"
    RESOURCES = [
        res("iconic", R.R_BOOLEAN, False),
    ]


class ApplicationShell(TopLevelShell):
    """The root of a widget tree; owns argv and the application class."""

    CLASS_NAME = "ApplicationShell"
    RESOURCES = [
        res("argc", R.R_INT, 0),
        res("argv", R.R_POINTER, None),
    ]
