"""The application context: event dispatch, timeouts, alternate inputs.

``XtAppContext`` owns the displays, the window->widget registry, global
actions, the converter registry, the resource database, and the main
loop.  Wafe's frontend mode hangs off :meth:`add_input`: the backend's
stdout pipe is registered as an alternate input source, exactly like
``XtAppAddInput`` in the C implementation, so GUI events and backend
commands interleave in one loop.

Readiness dispatch and timers live in the unified
:class:`~repro.xt.eventcore.EventCore` (one ``selectors``-based loop
multiplexing backends, timers, and work procs, with handler quarantine
and the slow-handler watchdog -- docs/ROBUSTNESS.md); this class keeps
the Xt-flavoured API (``add_input``/``add_timeout``/``main_loop``) on
top of it.
"""

import sys
import time as _time

from repro.tcl.errors import TclError, log_panic
from repro.xlib import xtypes
from repro.xlib.display import open_display
from repro.xt.converters import ConverterRegistry
from repro.xt.eventcore import EventCore
from repro.xt.xrm import XrmDatabase, quark


class XtAppContext:
    """One application context (XtCreateApplicationContext)."""

    def __init__(self, app_name="wafe", app_class="Wafe",
                 display_name=":0", use_selectors=True, use_regions=True,
                 naive_regions=False, core=None):
        self.app_name = app_name
        self.app_class = app_class
        # Damage-rendering A/B hatches, applied to every display this
        # context opens (use_regions=False is the eager-expose spec,
        # naive_regions=True swaps in the rect-list region spec).
        self.use_regions = use_regions
        self.naive_regions = naive_regions
        self.default_display = open_display(display_name)
        self._apply_region_mode(self.default_display)
        self.displays = [self.default_display]
        self.converters = ConverterRegistry()
        self.database = XrmDatabase()
        self.global_actions = {}
        self._window_widgets = {}
        # The unified event core: every timer, fd watch and work proc
        # goes through it (``use_selectors=False`` keeps the historical
        # raw-select pass as the executable spec).  A server injects one
        # shared core into many contexts (one per session); only the
        # owning context installs the global hooks or may shut it down,
        # and a non-owning context tracks every source it registers so
        # session teardown can sweep them off the shared loop.
        self.owns_core = core is None
        self.core = EventCore(use_selectors=use_selectors) \
            if core is None else core
        if self.owns_core:
            self.core.error_handler = self.report_exception
            self.core.report = self.report_message
        self._shared_timers = set()
        self._shared_watches = set()
        self._shared_work = set()
        self._quit = False
        self.event_count = 0
        self.dispatch_hook = None  # observe every dispatched event
        # Advisory messages (quarantines, watchdog trips, fd leaks):
        # embedders install a callable(str) here (Wafe wires its
        # report_error); without one they go to stderr.
        self.message_hook = None
        # The Xt-side exception firewall: embedders install a
        # handler(context, exc) here (Wafe routes Tcl errors to the
        # backend).  Without one, contained exceptions go to the panic
        # log -- never up through the event loop.
        self.error_handler = None
        # Frame hooks run at end-of-dispatch boundaries (the event queue
        # just drained): the frontend batches its protocol output until
        # here, giving frame-granularity pipelining.
        self.frame_hooks = []

    # ------------------------------------------------------------------
    # Displays / widgets

    def _apply_region_mode(self, display):
        display.use_regions = self.use_regions
        display.naive_regions = self.naive_regions

    def use_display(self, name):
        display = open_display(name)
        if display not in self.displays:
            self._apply_region_mode(display)
            self.displays.append(display)
        return display

    def register_window(self, window, widget):
        self._window_widgets[window.wid] = widget

    def unregister_window(self, window):
        self._window_widgets.pop(window.wid, None)

    def widget_for_window(self, window):
        if window is None:
            return None
        return self._window_widgets.get(window.wid)

    def widget_destroyed(self, widget):
        """Hook for embedders (Wafe drops its name binding here)."""

    def find_popup_shell(self, name, reference):
        """Find a popup shell by name among the reference's ancestors'
        children (how XtPopupSpringLoaded resolves a menu name)."""
        widget = reference
        while widget is not None:
            for child in widget.children:
                if child.name == name and getattr(child, "is_popup", False):
                    return child
            widget = widget.parent
        return None

    # ------------------------------------------------------------------
    # Resource database

    def load_resource_string(self, text):
        self.database.put_lines(text)

    def load_resource_file(self, path):
        self.database.load_file(path)

    def merge_resources(self, text):
        """The ``mergeResources`` command: extend the database.

        Returns the rejected (invalid) specifier lines so callers can
        report advisories.  The database generation bump invalidates
        every memoised search list, so widgets created -- or resources
        re-queried -- after the merge see the new entries.
        """
        return self.database.put_lines(text)

    def widget_path_quarks(self, widget):
        """The widget's interned name/class chains below the root.

        Cached per instance; the root component is substituted with the
        application name/class at query time (it can change via
        ``-name`` after widgets exist), so it is *not* part of the
        cached chain.
        """
        cached = widget._path_quarks
        if cached is None:
            parent = widget.parent
            if parent is None:
                cached = ((), ())
            else:
                names, classes = self.widget_path_quarks(parent)
                cached = (names + (quark(widget.name),),
                          classes + (widget.class_quark(),))
            widget._path_quarks = cached
        return cached

    def resource_search_list(self, widget):
        """The widget's Xrm search list (XrmQGetSearchList), cached on
        the instance and revalidated against the database generation
        and the application name."""
        key = (self.database.generation, self.app_name)
        cached = widget._xrm_search
        if cached is not None and cached[0] == key:
            return cached[1]
        names, classes = self.widget_path_quarks(widget)
        slist = self.database.get_search_list(
            (quark(self.app_name),) + names,
            (quark(self.app_class),) + classes)
        widget._xrm_search = (key, slist)
        return slist

    def query_resource(self, widget, resource_name, resource_class):
        if self.database.use_search_lists:
            slist = self.resource_search_list(widget)
            return self.database.search(slist, quark(resource_name),
                                        quark(resource_class))
        names = [self.app_name] + widget.name_path()[1:] + [resource_name]
        classes = [self.app_class] + widget.class_path()[1:] + \
            [resource_class]
        return self.database.query_naive(names, classes)

    # ------------------------------------------------------------------
    # Actions

    def register_action(self, name, func):
        """XtAppAddActions: func(widget, event, args)."""
        self.global_actions[name] = func

    def find_action(self, widget, name):
        action = widget.class_actions().get(name)
        if action is None:
            action = self.global_actions.get(name)
        return action

    # ------------------------------------------------------------------
    # Timeouts, inputs, work procs

    def add_timeout(self, interval_ms, func, *args):
        """XtAppAddTimeOut; returns an id usable with remove_timeout."""
        if self.owns_core:
            return self.core.add_timer(interval_ms, func, args)
        holder = []

        def fire(*timer_args):
            if holder:
                self._shared_timers.discard(holder[0])
            return func(*timer_args)

        timer_id = self.core.add_timer(interval_ms, fire, args)
        holder.append(timer_id)
        self._shared_timers.add(timer_id)
        return timer_id

    def remove_timeout(self, timeout_id):
        """Safe no-op when the timer already fired or was cancelled."""
        self._shared_timers.discard(timeout_id)
        self.core.remove_timer(timeout_id)

    def add_input(self, fileobj, func, label=None):
        """XtAppAddInput: call func(fileobj) when readable."""
        watch_id = self.core.add_reader(fileobj, func, label=label)
        if not self.owns_core:
            self._shared_watches.add(watch_id)
        return watch_id

    def remove_input(self, input_id):
        """Safe no-op on double removal, removal from inside the
        handler itself, or removal after quarantine."""
        self._shared_watches.discard(input_id)
        self.core.remove_watch(input_id)

    def add_output(self, fileobj, func, label=None):
        """XtAppAddInput with XtInputWriteMask: call func(fileobj) when
        the descriptor is writable (used for non-blocking pipe drains)."""
        watch_id = self.core.add_writer(fileobj, func, label=label)
        if not self.owns_core:
            self._shared_watches.add(watch_id)
        return watch_id

    def remove_output(self, output_id):
        """Safe no-op when the watch is already gone."""
        self._shared_watches.discard(output_id)
        self.core.remove_watch(output_id)

    def add_work_proc(self, func, label=None):
        """XtAppAddWorkProc: func() -> True removes itself."""
        work_id = self.core.add_work_proc(func, label=label)
        if not self.owns_core:
            self._shared_work.add(work_id)
        return work_id

    def remove_work_proc(self, work_id):
        self._shared_work.discard(work_id)
        self.core.remove_work_proc(work_id)

    def release_core_sources(self):
        """Sweep every source this context registered off a shared core
        (session teardown).  Each removal is a safe no-op for sources
        that already fired, were removed, or were quarantined; returns
        how many were still live."""
        released = 0
        for timer_id in list(self._shared_timers):
            if self.core.remove_timer(timer_id):
                released += 1
        self._shared_timers.clear()
        for watch_id in list(self._shared_watches):
            if self.core.remove_watch(watch_id):
                released += 1
        self._shared_watches.clear()
        for work_id in list(self._shared_work):
            if self.core.remove_work_proc(work_id):
                released += 1
        self._shared_work.clear()
        return released

    # Compatibility views of the core's state (the pre-eventcore
    # attribute shapes, still used by tests and introspection).

    @property
    def _timeouts(self):
        return self.core.pending_timers()

    @property
    def _work_procs(self):
        return self.core.work_proc_entries()

    # ------------------------------------------------------------------
    # Event dispatch

    def report_exception(self, context, exc):
        """Contain an exception raised by a handler (callback, action,
        timeout, input, work proc).  The event loop must survive any
        single handler, so this never re-raises: the embedder's
        ``error_handler`` gets first crack (Wafe ships Tcl errors to
        the backend); failing that -- or if the handler itself raises
        -- the panic log records the full traceback."""
        handler = self.error_handler
        if handler is not None:
            try:
                handler(context, exc)
                return
            except Exception:  # noqa: BLE001 -- the handler of last resort
                pass
        log_panic(context, exc)

    def report_message(self, message):
        """Advisory reporting (quarantines, slow handlers, fd leaks):
        through the embedder's hook, or stderr standalone."""
        hook = self.message_hook
        if hook is not None:
            try:
                hook(message)
                return
            except Exception:  # noqa: BLE001 -- reporter of last resort
                pass
        sys.stderr.write("wafe: %s\n" % message)

    def pending(self):
        """XtAppPending-ish: X events queued right now."""
        return sum(d.pending() for d in self.displays)

    def dispatch_event(self, event):
        """XtDispatchEvent: route one X event to its widget."""
        self.event_count += 1
        widget = self.widget_for_window(event.window)
        if self.dispatch_hook is not None:
            self.dispatch_hook(widget, event)
        if widget is None or widget.destroyed:
            return False
        if event.type == xtypes.Expose:
            widget.handle_expose(event)
            return True
        if event.type in (xtypes.KeyPress, xtypes.KeyRelease,
                          xtypes.ButtonPress, xtypes.ButtonRelease):
            if not widget.is_sensitive():
                return False
        def accel_lookup(directive):
            # Accelerators installed from other widgets fire their
            # actions on the *source* widget (Xt semantics).  A table
            # marked #override beats the destination's own bindings;
            # the default (augment) defers to them.
            for accel_table, source in widget.accelerator_bindings:
                if accel_table is None or source.destroyed:
                    continue
                if accel_table.directive != directive:
                    continue
                hit = accel_table.lookup(event)
                if hit:
                    return hit, source
            return None, widget

        actions, target = accel_lookup("override")
        if not actions:
            table = widget.resources.get("translations")
            if table is not None:
                progress = getattr(widget, "_translation_progress", None)
                if progress is None:
                    progress = widget._translation_progress = {}
                actions = table.lookup_stateful(event, progress)
            else:
                actions = None
            target = widget
        if not actions:
            actions, target = accel_lookup("replace")
        if not actions:
            actions, target = accel_lookup("augment")
        if not actions:
            return False
        for name, args in actions:
            func = self.find_action(target, name)
            if func is None:
                # Xt warns about unbound actions; don't abort the list.
                continue
            try:
                func(target, event, args)
            except Exception as exc:  # noqa: BLE001 -- firewall
                self.report_exception('action "%s"' % name, exc)
        return True

    def add_frame_hook(self, func):
        """Register a callable run at every end-of-dispatch boundary."""
        if func not in self.frame_hooks:
            self.frame_hooks.append(func)

    def remove_frame_hook(self, func):
        if func in self.frame_hooks:
            self.frame_hooks.remove(func)

    def end_frame(self):
        """The event queue just drained: run the frame hooks (protocol
        output flush points).  Hook failures are contained."""
        for hook in list(self.frame_hooks):
            try:
                hook()
            except Exception as exc:  # noqa: BLE001 -- firewall
                self.report_exception("frame hook", exc)

    def process_pending(self, max_events=None):
        """Dispatch every queued X event; returns how many."""
        count = 0
        progress = True
        while progress:
            progress = False
            for display in self.displays:
                while display.pending():
                    self.dispatch_event(display.next_event())
                    count += 1
                    progress = True
                    if max_events is not None and count >= max_events:
                        self.end_frame()
                        return count
        self.end_frame()
        return count

    def process_one(self, block=True):
        """XtAppProcessEvent: one X event, timer, or input."""
        if self.pending():
            for display in self.displays:
                if display.pending():
                    self.dispatch_event(display.next_event())
                    if self.pending() == 0:
                        self.end_frame()
                    return True
        if self.core.run_due_timers():
            return True
        timeout = 0.0
        if block:
            # Xlib flushes its output buffer before blocking in select;
            # the frame hooks are our XFlush, so pipelined protocol
            # output cannot stall a round trip waiting for the poll
            # timeout.
            self.end_frame()
            deadline = self.core.next_deadline()
            if deadline is not None:
                timeout = max(0.0, deadline - _time.monotonic())
                timeout = min(timeout, 0.1)
            else:
                timeout = 0.05
        if self.core.poll(timeout):
            return True
        if self.core.run_one_work_proc():
            return True
        return False

    def main_loop(self, until=None, max_idle=None):
        """XtAppMainLoop.

        ``until``: optional predicate; the loop ends when it turns true.
        ``max_idle``: give up after this many consecutive idle polls
        with no possible event source (prevents hangs in tests and in
        file-mode scripts whose work is done).
        """
        idle = 0
        while not self._quit:
            if until is not None and until():
                return
            worked = self.process_one(block=True)
            if worked:
                idle = 0
                continue
            idle += 1
            if not self.core.has_sources() and self.pending() == 0:
                return  # nothing can ever happen again
            if max_idle is not None and idle >= max_idle:
                return

    def shutdown(self, drain_timeout=0.5):
        """Graceful shutdown: bounded drain of pending writer watches,
        then unregister every remaining source (leaks are counted and
        reported).  The context stays usable afterwards.

        A context on a *shared* core must not tear the loop down under
        its sibling sessions: it only releases its own sources."""
        self._quit = True
        if self.owns_core:
            return self.core.shutdown(drain_timeout)
        self.release_core_sources()
        return 0

    def exit_loop(self):
        """The ``quit`` command."""
        self._quit = True

    @property
    def quit_requested(self):
        return self._quit


class XtError(TclError):
    """Toolkit-level error."""
