"""Translation tables: the Xt event-to-action binding language.

Parses the subset of the translation grammar the paper and the Athena
widgets use::

    #override
    <EnterWindow>: PopupMenu()
    <Key>Return: exec(echo [gV input string])
    Shift<KeyPress>: exec(echo %k)
    <Btn1Down>: set() notify()

Each production is ``[modifiers]<event>[detail]: action(args) ...``.
Tables carry an optional ``#replace``/``#override``/``#augment``
directive; :func:`merge_tables` implements the corresponding Xt merge
semantics (also used by Wafe's ``action widget override ...`` command).

Multi-event sequences (``<Btn1Down>,<Btn1Up>``) are supported through
the stateful matcher (:meth:`TranslationTable.lookup_stateful`); the
dispatcher tracks per-widget sequence progress.  Limitation
(documented): the ``:`` / ``#`` modifier prefixes of the full grammar
are not supported.
"""

from repro.tcl.errors import TclError
from repro.xlib import keysym as _keysym
from repro.xlib import xtypes


class TranslationError(TclError):
    """A translation table failed to parse."""


_MODIFIER_BITS = {
    "shift": xtypes.ShiftMask,
    "lock": xtypes.LockMask,
    "ctrl": xtypes.ControlMask,
    "meta": xtypes.Mod1Mask,
    "mod1": xtypes.Mod1Mask,
    "button1": xtypes.Button1Mask,
    "button2": xtypes.Button2Mask,
    "button3": xtypes.Button3Mask,
}

# Event-spec name -> (event type, button detail or None)
_EVENT_TYPES = {
    "keypress": (xtypes.KeyPress, None),
    "key": (xtypes.KeyPress, None),
    "keydown": (xtypes.KeyPress, None),
    "keyrelease": (xtypes.KeyRelease, None),
    "keyup": (xtypes.KeyRelease, None),
    "buttonpress": (xtypes.ButtonPress, None),
    "btndown": (xtypes.ButtonPress, None),
    "btn1down": (xtypes.ButtonPress, 1),
    "btn2down": (xtypes.ButtonPress, 2),
    "btn3down": (xtypes.ButtonPress, 3),
    "buttonrelease": (xtypes.ButtonRelease, None),
    "btnup": (xtypes.ButtonRelease, None),
    "btn1up": (xtypes.ButtonRelease, 1),
    "btn2up": (xtypes.ButtonRelease, 2),
    "btn3up": (xtypes.ButtonRelease, 3),
    "enterwindow": (xtypes.EnterNotify, None),
    "enter": (xtypes.EnterNotify, None),
    "enternotify": (xtypes.EnterNotify, None),
    "leavewindow": (xtypes.LeaveNotify, None),
    "leave": (xtypes.LeaveNotify, None),
    "leavenotify": (xtypes.LeaveNotify, None),
    "motionnotify": (xtypes.MotionNotify, None),
    "motion": (xtypes.MotionNotify, None),
    "ptrmoved": (xtypes.MotionNotify, None),
    "mousemoved": (xtypes.MotionNotify, None),
    "btnmotion": (xtypes.MotionNotify, None),
    "focusin": (xtypes.FocusIn, None),
    "focusout": (xtypes.FocusOut, None),
    "expose": (xtypes.Expose, None),
}


class EventSpec:
    """One ``[modifiers]<event>[detail]`` element of a production."""

    __slots__ = ("event_type", "button", "keysym", "modifiers",
                 "modifier_mask", "exact")

    def __init__(self, event_type, button, keysym, modifiers, modifier_mask,
                 exact):
        self.event_type = event_type
        self.button = button
        self.keysym = keysym
        self.modifiers = modifiers          # required bits set
        self.modifier_mask = modifier_mask  # bits we care about
        self.exact = exact                  # None/'!' exactness

    def matches(self, event):
        if event.type != self.event_type:
            return False
        if self.button is not None and event.button != self.button:
            return False
        if self.keysym is not None:
            shifted = bool(event.state & xtypes.ShiftMask)
            value = _keysym.keycode_to_keysym(event.keycode, shifted)
            if value != self.keysym:
                return False
        state = event.state
        if self.exact:
            relevant = (xtypes.ShiftMask | xtypes.ControlMask |
                        xtypes.Mod1Mask)
            return (state & relevant) == self.modifiers
        if (state & self.modifier_mask) != self.modifiers:
            return False
        return True


class Production:
    """One line: event sequence -> list of (action, args).

    Most productions are single-event; sequences like
    ``<Btn1Down>,<Btn1Up>`` carry several specs and only fire when the
    whole sequence arrives in order (tracked per widget by the
    dispatcher through :meth:`TranslationTable.lookup_stateful`).
    """

    __slots__ = ("specs", "actions", "source")

    def __init__(self, specs, actions, source):
        self.specs = specs
        self.actions = actions
        self.source = source

    # Compatibility accessors for single-event productions.
    @property
    def event_type(self):
        return self.specs[0].event_type

    @property
    def button(self):
        return self.specs[0].button

    @property
    def keysym(self):
        return self.specs[0].keysym

    def matches(self, event):
        """Stateless match: single-event productions only."""
        return len(self.specs) == 1 and self.specs[0].matches(event)


_NO_PRODUCTIONS = ()


class TranslationTable:
    """An ordered list of productions plus the merge directive.

    Dispatch is indexed: productions are bucketed by the event type of
    their *first* spec (built lazily, since merge_tables constructs
    fresh tables constantly), so per-event lookup touches only the
    productions that could possibly start on this event instead of
    linearly scanning every binding in the table.
    """

    __slots__ = ("productions", "directive", "source", "_by_type")

    def __init__(self, productions, directive="replace", source=""):
        self.productions = productions
        self.directive = directive
        self.source = source
        self._by_type = None

    def _index(self):
        by_type = self._by_type
        if by_type is None:
            by_type = {}
            for production in self.productions:
                by_type.setdefault(production.specs[0].event_type,
                                   []).append(production)
            self._by_type = by_type
        return by_type

    def lookup(self, event):
        """First matching single-event production's actions, or None."""
        for production in self._index().get(event.type, _NO_PRODUCTIONS):
            if production.matches(event):
                return production.actions
        return None

    def lookup_stateful(self, event, progress):
        """Sequence-aware lookup.

        ``progress`` maps ``id(production)`` to the index of the next
        spec expected; the caller keeps one dict per widget, and only
        nonzero positions are stored.  Returns the actions of the first
        production completed by this event.  Productions whose
        in-flight sequence is broken by the event reset, as Xt's
        matcher does.

        With no sequence in flight (the common case -- ``progress``
        empty) only the productions indexed under this event type are
        consulted; a production of another start type can neither fire
        nor change state.  Once sequences are mid-flight every
        production is scanned, because an unrelated event must reset
        them.
        """
        if progress:
            candidates = self.productions
        else:
            candidates = self._index().get(event.type, _NO_PRODUCTIONS)
        fired = None
        for production in candidates:
            key = id(production)
            index = progress.get(key, 0)
            if index < len(production.specs) and \
                    production.specs[index].matches(event):
                index += 1
            elif production.specs[0].matches(event):
                index = 1  # restart the sequence at this event
            else:
                index = 0
            if index >= len(production.specs):
                if fired is None:
                    fired = production.actions
                index = 0
            if index:
                progress[key] = index
            else:
                progress.pop(key, None)
        return fired

    def __len__(self):
        return len(self.productions)


def parse_translation_table(text):
    """Parse translation-table text into a :class:`TranslationTable`."""
    productions = []
    directive = "replace"
    for raw_line in text.replace("\\n", "\n").split("\n"):
        line = raw_line.strip()
        if not line or line.startswith("!"):
            continue
        if line.startswith("#"):
            word = line[1:].strip().lower()
            if word in ("replace", "override", "augment"):
                directive = word
                continue
            raise TranslationError('unknown directive "%s"' % line)
        productions.append(_parse_production(line))
    return TranslationTable(productions, directive, text)


def _parse_production(line):
    colon = _find_colon(line)
    if colon < 0:
        raise TranslationError('missing ":" in translation "%s"' % line)
    lhs = line[:colon].strip()
    rhs = line[colon + 1 :].strip()
    specs = [_parse_event_spec(part.strip())
             for part in lhs.split(",") if part.strip()]
    if not specs:
        raise TranslationError('empty event sequence in "%s"' % line)
    actions = _parse_actions(rhs)
    return Production(specs, actions, line)


def _find_colon(line):
    """The ':' separating spec from actions (not one inside <>)."""
    depth = 0
    for i, ch in enumerate(line):
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        elif ch == ":" and depth == 0:
            return i
    return -1


def _parse_event_spec(spec):
    exact = False
    modifiers = 0
    mask = 0
    rest = spec
    if rest.startswith("!"):
        exact = True
        rest = rest[1:].strip()
    angle = rest.find("<")
    if angle < 0:
        raise TranslationError('missing "<" in event spec "%s"' % spec)
    for token in rest[:angle].replace("~", " ~").split():
        negate = token.startswith("~")
        name = token[1:] if negate else token
        lowered = name.lower()
        if lowered == "none":
            exact = True
            continue
        bit = _MODIFIER_BITS.get(lowered)
        if bit is None:
            raise TranslationError('unknown modifier "%s"' % name)
        mask |= bit
        if not negate:
            modifiers |= bit
    close = rest.find(">", angle)
    if close < 0:
        raise TranslationError('missing ">" in event spec "%s"' % spec)
    event_name = rest[angle + 1 : close].strip().lower()
    if event_name not in _EVENT_TYPES:
        raise TranslationError('unknown event type "<%s>"'
                               % rest[angle + 1 : close].strip())
    event_type, button = _EVENT_TYPES[event_name]
    detail = rest[close + 1 :].strip()
    keysym = None
    if detail:
        if event_type in (xtypes.KeyPress, xtypes.KeyRelease):
            keysym = _keysym.string_to_keysym(detail)
            if keysym == _keysym.NoSymbol:
                raise TranslationError('unknown keysym "%s"' % detail)
        elif event_type in (xtypes.ButtonPress, xtypes.ButtonRelease):
            try:
                button = int(detail)
            except ValueError:
                raise TranslationError('bad button detail "%s"' % detail)
    return EventSpec(event_type, button, keysym, modifiers, mask, exact)


def _parse_actions(text):
    """Parse ``name(arg, arg) name2()`` into [(name, [args]), ...]."""
    actions = []
    i = 0
    n = len(text)
    while i < n:
        while i < n and text[i] in " \t":
            i += 1
        if i >= n:
            break
        start = i
        while i < n and (text[i].isalnum() or text[i] in "_-"):
            i += 1
        name = text[start:i]
        if not name:
            raise TranslationError('bad action list "%s"' % text)
        args = []
        if i < n and text[i] == "(":
            depth = 0
            j = i
            while j < n:
                if text[j] == "(":
                    depth += 1
                elif text[j] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if j >= n:
                raise TranslationError('missing ")" in action "%s"' % text)
            body = text[i + 1 : j]
            args = _split_args(body)
            i = j + 1
        actions.append((name, args))
    return actions


def _split_args(body):
    """Comma-split at top level; quoted strings keep their commas."""
    if body.strip() == "":
        return []
    args = []
    current = []
    depth = 0
    in_quote = False
    for ch in body:
        if in_quote:
            if ch == '"':
                in_quote = False
            else:
                current.append(ch)
            continue
        if ch == '"':
            in_quote = True
        elif ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    args.append("".join(current).strip())
    return args


def merge_tables(base, new):
    """Apply Xt merge semantics according to ``new.directive``.

    * replace: the new table wins entirely.
    * override: new productions are consulted before the old ones.
    * augment: new productions are consulted only where the old table
      has no binding (appended after).
    """
    if base is None or new.directive == "replace":
        return new
    if new.directive == "override":
        productions = list(new.productions) + list(base.productions)
    else:  # augment
        productions = list(base.productions) + list(new.productions)
    merged = TranslationTable(productions, "replace",
                              base.source + "\n" + new.source)
    return merged
