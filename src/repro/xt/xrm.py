"""The Xrm resource database: files, wildcards, precedence, merging.

This is what stands behind resource files, ``-xrm`` command line options
and Wafe's ``mergeResources`` command.  Specifications look like::

    *Font: fixed
    wafe.form.quit.label: Quit
    *Command.background: gray75

Components are separated by ``.`` (tight) or ``*`` (loose); each
component can match a widget *name* or its *class*.  Lookup follows the
X11R5 precedence rules: earlier (closer to the root) levels dominate,
name matches beat class matches beat ``?``, tight bindings beat loose
skips, and among equal matches the later-added entry wins (which gives
``mergeResources`` its override behaviour).
"""


class _Entry:
    __slots__ = ("bindings", "components", "value", "serial")

    def __init__(self, bindings, components, value, serial):
        self.bindings = bindings      # '.' or '*' before each component
        self.components = components  # names/classes/'?'
        self.value = value
        self.serial = serial


def parse_specifier(spec):
    """Split ``a*B.c`` into (bindings, components)."""
    bindings = []
    components = []
    current = []
    pending = "."
    for ch in spec.strip():
        if ch in ".*":
            if current:
                bindings.append(pending)
                components.append("".join(current))
                current = []
                pending = ch
            else:
                # Consecutive separators: '*' absorbs '.'
                if ch == "*":
                    pending = "*"
        else:
            current.append(ch)
    if current:
        bindings.append(pending)
        components.append("".join(current))
    return bindings, components


class XrmDatabase:
    """An in-memory resource database."""

    def __init__(self):
        self._entries = []
        self._serial = 0

    def __len__(self):
        return len(self._entries)

    def put(self, spec, value):
        bindings, components = parse_specifier(spec)
        if not components:
            return
        self._serial += 1
        self._entries.append(_Entry(bindings, components, value,
                                    self._serial))

    def put_lines(self, text):
        """Load resource-file syntax: one ``spec: value`` per line."""
        pending = ""
        for raw in text.splitlines():
            line = pending + raw
            pending = ""
            if line.endswith("\\"):
                pending = line[:-1]
                continue
            stripped = line.strip()
            if not stripped or stripped.startswith("!"):
                continue
            if stripped.startswith("#"):
                continue  # #include is not supported
            colon = line.find(":")
            if colon < 0:
                continue
            spec = line[:colon]
            value = line[colon + 1 :].lstrip(" \t")
            self.put(spec, value.rstrip("\n"))

    def load_file(self, path):
        with open(path, "r") as handle:
            self.put_lines(handle.read())

    def merge(self, other):
        """Entries from ``other`` override equal matches here."""
        for entry in other._entries:
            self._serial += 1
            self._entries.append(_Entry(entry.bindings, entry.components,
                                        entry.value, self._serial))

    # ------------------------------------------------------------------

    def query(self, names, classes):
        """Look up a resource.

        ``names``/``classes`` run from the application down to the
        resource name itself, e.g. ``["wafe", "form", "quit", "label"]``
        and ``["Wafe", "Form", "Command", "Label"]``.
        """
        best_score = None
        best_value = None
        best_serial = -1
        for entry in self._entries:
            score = _match(entry, 0, names, classes, 0)
            if score is None:
                continue
            key = tuple(score)
            if (best_score is None or key > best_score
                    or (key == best_score and entry.serial > best_serial)):
                best_score = key
                best_value = entry.value
                best_serial = entry.serial
        return best_value


# Per-level match quality (leftmost level most significant).
_NAME_TIGHT = 6
_CLASS_TIGHT = 5
_ANY_TIGHT = 4
_NAME_LOOSE = 3
_CLASS_LOOSE = 2
_ANY_LOOSE = 1
_SKIPPED = 0


def _match(entry, ei, names, classes, qi):
    """Recursive matcher; returns the per-level score list or None."""
    n_entry = len(entry.components)
    n_query = len(names)
    if ei == n_entry:
        return [] if qi == n_query else None
    if qi == n_query:
        return None
    component = entry.components[ei]
    binding = entry.bindings[ei]
    results = []
    # Try to match this component at this query level.
    quality = None
    if component == names[qi]:
        quality = _NAME_TIGHT if binding == "." else _NAME_LOOSE
    elif component == classes[qi]:
        quality = _CLASS_TIGHT if binding == "." else _CLASS_LOOSE
    elif component == "?":
        quality = _ANY_TIGHT if binding == "." else _ANY_LOOSE
    if quality is not None:
        rest = _match(entry, ei + 1, names, classes, qi + 1)
        if rest is not None:
            results.append([quality] + rest)
    # A loose binding may skip this query level entirely.
    if binding == "*":
        rest = _match(entry, ei, names, classes, qi + 1)
        if rest is not None:
            results.append([_SKIPPED] + rest)
    if not results:
        return None
    return max(results, key=tuple)
