"""The Xrm resource database: files, wildcards, precedence, merging.

This is what stands behind resource files, ``-xrm`` command line options
and Wafe's ``mergeResources`` command.  Specifications look like::

    *Font: fixed
    wafe.form.quit.label: Quit
    *Command.background: gray75

Components are separated by ``.`` (tight) or ``*`` (loose); each
component can match a widget *name* or its *class*.  Lookup follows the
X11R5 precedence rules: earlier (closer to the root) levels dominate,
name matches beat class matches beat ``?``, tight bindings beat loose
skips, and among equal matches the later-added entry wins (which gives
``mergeResources`` its override behaviour).

Two lookup engines share those semantics:

* the *naive* matcher (:meth:`XrmDatabase.query_naive`) scans every
  entry and scores it with a recursive matcher -- the pre-X11R5
  algorithm, kept as the executable specification;
* the *quark tree* (the default :meth:`XrmDatabase.query`): components
  are interned to integer quarks (:func:`quark`), entries live in a
  tree of nodes keyed by ``(quark, tight/loose)``, and lookup is split
  into :meth:`XrmDatabase.get_search_list` -- computed once per widget
  path -- and :meth:`XrmDatabase.search` -- a cheap walk over that
  list, run once per resource.  This mirrors X11R5's
  ``XrmQGetSearchList`` / ``XrmQGetSearchResource`` pair.

A generation counter invalidates memoised search lists whenever the
database changes (``mergeResources``, ``-xrm``), so dynamic merges stay
correct; ``tests/test_xt_xrm.py`` holds a differential test pinning the
two engines to byte-identical answers on randomized databases.
"""

import time as _time

# ----------------------------------------------------------------------
# Quark interning (XrmStringToQuark / XrmQuarkToString)

_quark_table = {}
_quark_strings = []


def quark(string):
    """Intern ``string``; equal strings always give the same int."""
    q = _quark_table.get(string)
    if q is None:
        q = len(_quark_strings)
        _quark_table[string] = q
        _quark_strings.append(string)
    return q


def quark_name(q):
    """The string a quark was interned from."""
    return _quark_strings[q]


def quark_count():
    """How many distinct strings have been interned (process-wide)."""
    return len(_quark_strings)


def quark_list(strings):
    """Intern a component chain; returns a tuple of quarks."""
    get = _quark_table.get
    out = []
    for string in strings:
        q = get(string)
        if q is None:
            q = quark(string)
        out.append(q)
    return tuple(out)


_Q_ANY = quark("?")


class _Entry:
    __slots__ = ("bindings", "components", "value", "serial")

    def __init__(self, bindings, components, value, serial):
        self.bindings = bindings      # '.' or '*' before each component
        self.components = components  # names/classes/'?'
        self.value = value
        self.serial = serial


def parse_specifier(spec):
    """Split ``a*B.c`` into (bindings, components).

    Invalid specifiers -- empty, separator-only, or ending in a
    dangling ``.``/``*`` -- yield ``([], [])`` so callers add no entry
    (X11R5 rejects them rather than guessing).
    """
    spec = spec.strip()
    bindings = []
    components = []
    current = []
    pending = "."
    trailing_separator = False
    for ch in spec:
        if ch in ".*":
            trailing_separator = True
            if current:
                bindings.append(pending)
                components.append("".join(current))
                current = []
                pending = ch
            else:
                # Consecutive separators: '*' absorbs '.'
                if ch == "*":
                    pending = "*"
        else:
            trailing_separator = False
            current.append(ch)
    if current:
        bindings.append(pending)
        components.append("".join(current))
    elif trailing_separator or not components:
        # "a.b." / "*" / "" -- reject the whole specifier.
        return [], []
    return bindings, components


def _decode_value(raw):
    """Decode X11R5 resource-value escapes.

    ``\\n`` is a newline, ``\\\\`` a backslash, ``\\<space>`` and
    ``\\<tab>`` the literal whitespace character (so values may start
    with blanks), ``\\nnn`` with exactly three octal digits the coded
    character.  Any other backslash sequence passes through verbatim.
    """
    if "\\" not in raw:
        return raw
    out = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        nxt = raw[i + 1] if i + 1 < n else None
        if nxt == "n":
            out.append("\n")
            i += 2
        elif nxt == "\\":
            out.append("\\")
            i += 2
        elif nxt in (" ", "\t"):
            out.append(nxt)
            i += 2
        elif (nxt is not None and nxt in "01234567" and i + 3 < n
                and raw[i + 2] in "01234567" and raw[i + 3] in "01234567"):
            out.append(chr(int(raw[i + 1 : i + 4], 8)))
            i += 4
        else:
            out.append("\\")
            i += 1
    return "".join(out)


def _trailing_backslashes(text):
    count = 0
    for ch in reversed(text):
        if ch != "\\":
            break
        count += 1
    return count


class _Node:
    """One node of the quark tree (X11R5's NTable/LTable pair).

    ``tight``/``loose`` map a component quark to the child node behind
    a ``.``/``*`` binding; ``tight_values``/``loose_values`` map a
    *final* component quark to ``(value, serial)``.
    """

    __slots__ = ("tight", "loose", "tight_values", "loose_values")

    def __init__(self):
        self.tight = {}
        self.loose = {}
        self.tight_values = {}
        self.loose_values = {}


# Per-level match quality (leftmost level most significant).
_NAME_TIGHT = 6
_CLASS_TIGHT = 5
_ANY_TIGHT = 4
_NAME_LOOSE = 3
_CLASS_LOOSE = 2
_ANY_LOOSE = 1
_SKIPPED = 0


class XrmDatabase:
    """An in-memory resource database."""

    def __init__(self):
        self._entries = []
        self._serial = 0
        self._root = _Node()
        self._generation = 0
        self._search_cache = {}
        # ``info xrmstats`` counters.
        self._stat_hits = 0
        self._stat_misses = 0
        self._stat_searches = 0
        self._stat_generation_bumps = 0
        # Benchmarks flip this on to get a resource-lookup time column;
        # the hot path pays nothing while it is off.
        self.profile = False
        self.profile_s = 0.0
        self.profile_lookups = 0
        # A/B escape hatch for the benchmarks: route ``query`` through
        # the retained naive matcher instead of the quark tree.
        self.use_search_lists = True

    def __len__(self):
        return len(self._entries)

    @property
    def generation(self):
        """Bumped on every mutation; memoised search lists key on it."""
        return self._generation

    # ------------------------------------------------------------------
    # Building the database

    def put(self, spec, value):
        """Add one entry; returns False for an invalid specifier."""
        bindings, components = parse_specifier(spec)
        if not components:
            return False
        self._serial += 1
        self._entries.append(_Entry(bindings, components, value,
                                    self._serial))
        self._insert(bindings, components, value, self._serial)
        self._bump_generation()
        return True

    def _insert(self, bindings, components, value, serial):
        node = self._root
        for binding, component in zip(bindings[:-1], components[:-1]):
            q = quark(component)
            table = node.tight if binding == "." else node.loose
            child = table.get(q)
            if child is None:
                child = table[q] = _Node()
            node = child
        final = quark(components[-1])
        if bindings[-1] == ".":
            node.tight_values[final] = (value, serial)
        else:
            node.loose_values[final] = (value, serial)

    def _bump_generation(self):
        self._generation += 1
        self._stat_generation_bumps += 1
        if self._search_cache:
            self._search_cache.clear()

    def put_lines(self, text):
        """Load resource-file syntax: one ``spec: value`` per line.

        Returns the list of rejected specifier lines (invalid
        specifiers, per :func:`parse_specifier`) so callers like
        ``mergeResources`` can report advisories.
        """
        rejected = []
        lines = text.split("\n")
        i = 0
        n = len(lines)
        while i < n:
            segment = lines[i]
            i += 1
            stripped = segment.strip()
            if not stripped or stripped.startswith("!"):
                # Comments never continue: a trailing backslash on a
                # comment line must not swallow the following line.
                continue
            if stripped.startswith("#"):
                continue  # #include is not supported
            # Backslash-newline continuation: only an *odd* run of
            # trailing backslashes continues (an even run is escaped
            # backslashes that belong to the value).
            parts = [segment]
            while _trailing_backslashes(parts[-1]) % 2 == 1 and i < n:
                parts[-1] = parts[-1][:-1]
                parts.append(lines[i])
                i += 1
            line = "".join(parts)
            colon = line.find(":")
            if colon < 0:
                continue
            spec = line[:colon]
            value = _decode_value(line[colon + 1 :].lstrip(" \t"))
            if not self.put(spec, value.rstrip("\n")):
                rejected.append(spec.strip() or line.strip())
        return rejected

    def load_file(self, path):
        with open(path, "r") as handle:
            self.put_lines(handle.read())

    def merge(self, other):
        """Entries from ``other`` override equal matches here."""
        for entry in other._entries:
            self._serial += 1
            self._entries.append(_Entry(entry.bindings, entry.components,
                                        entry.value, self._serial))
            self._insert(entry.bindings, entry.components, entry.value,
                         self._serial)
        self._bump_generation()

    # ------------------------------------------------------------------
    # Two-phase lookup (XrmQGetSearchList / XrmQGetSearchResource)

    def get_search_list(self, name_quarks, class_quarks):
        """The nodes reachable for a widget path, in precedence order.

        ``name_quarks``/``class_quarks`` cover the widget path *without*
        the final resource component (application down to the widget
        itself).  The result is memoised until the database changes;
        widgets additionally cache it per instance, so creating a
        widget computes it once and every resource pays only
        :meth:`search`.
        """
        key = (name_quarks, class_quarks)
        cached = self._search_cache.get(key)
        if cached is not None:
            self._stat_hits += 1
            return cached
        self._stat_misses += 1
        slist = self._compute_search_list(name_quarks, class_quarks)
        self._search_cache[key] = slist
        return slist

    def _compute_search_list(self, name_quarks, class_quarks):
        # Dynamic programming over (node, loose_only) states.  A state
        # is ``loose_only`` after a level skip: per entry the skip is
        # licensed by the *next* component's loose binding, so after
        # skipping only loose continuations remain legal.  The score is
        # the per-level quality vector of the naive matcher, which
        # makes "sort by score" reproduce its precedence exactly.
        states = {(id(self._root), False): (self._root, False, ())}
        for nq, cq in zip(name_quarks, class_quarks):
            next_states = {}

            def consider(node, loose_only, score):
                key = (id(node), loose_only)
                best = next_states.get(key)
                if best is None or score > best[2]:
                    next_states[key] = (node, loose_only, score)

            for node, loose_only, score in states.values():
                if not loose_only and node.tight:
                    tight = node.tight
                    child = tight.get(nq)
                    if child is not None:
                        consider(child, False, score + (_NAME_TIGHT,))
                    if cq != nq:
                        child = tight.get(cq)
                        if child is not None:
                            consider(child, False, score + (_CLASS_TIGHT,))
                    child = tight.get(_Q_ANY)
                    if child is not None and nq != _Q_ANY and cq != _Q_ANY:
                        consider(child, False, score + (_ANY_TIGHT,))
                loose = node.loose
                if loose:
                    child = loose.get(nq)
                    if child is not None:
                        consider(child, False, score + (_NAME_LOOSE,))
                    if cq != nq:
                        child = loose.get(cq)
                        if child is not None:
                            consider(child, False, score + (_CLASS_LOOSE,))
                    child = loose.get(_Q_ANY)
                    if child is not None and nq != _Q_ANY and cq != _Q_ANY:
                        consider(child, False, score + (_ANY_LOOSE,))
                if loose or node.loose_values:
                    # A level skip, licensed by some loose continuation.
                    consider(node, True, score + (_SKIPPED,))
            states = next_states
            if not states:
                break
        ordered = sorted(states.values(), key=lambda s: s[2], reverse=True)
        slist = []
        loose_checked = set()
        for node, loose_only, __ in ordered:
            tight_values = None if loose_only else node.tight_values
            loose_values = node.loose_values
            if id(node) in loose_checked:
                # An earlier (higher-precedence) state already walks
                # this node's loose values.
                loose_values = None
            else:
                loose_checked.add(id(node))
            if loose_only and not loose_values:
                continue
            if not tight_values and not loose_values:
                continue
            slist.append((tight_values or None, loose_values or None))
        return tuple(slist)

    def search(self, slist, name_quark, class_quark):
        """Per-resource phase: walk a search list for one resource.

        Within a node the final level obeys the same quality order the
        naive matcher scores: tight name/class/``?`` before loose
        name/class/``?``.
        """
        self._stat_searches += 1
        if self.profile:
            start = _time.perf_counter()
            value = self._search(slist, name_quark, class_quark)
            self.profile_s += _time.perf_counter() - start
            self.profile_lookups += 1
            return value
        return self._search(slist, name_quark, class_quark)

    def _search(self, slist, name_quark, class_quark):
        for tight_values, loose_values in slist:
            if tight_values:
                hit = tight_values.get(name_quark)
                if hit is None and class_quark != name_quark:
                    hit = tight_values.get(class_quark)
                if hit is None:
                    hit = tight_values.get(_Q_ANY)
                if hit is not None:
                    return hit[0]
            if loose_values:
                hit = loose_values.get(name_quark)
                if hit is None and class_quark != name_quark:
                    hit = loose_values.get(class_quark)
                if hit is None:
                    hit = loose_values.get(_Q_ANY)
                if hit is not None:
                    return hit[0]
        return None

    # ------------------------------------------------------------------
    # Whole-path queries

    def query(self, names, classes):
        """Look up a resource.

        ``names``/``classes`` run from the application down to the
        resource name itself, e.g. ``["wafe", "form", "quit", "label"]``
        and ``["Wafe", "Form", "Command", "Label"]``.
        """
        if not names:
            return None
        if not self.use_search_lists:
            return self.query_naive(names, classes)
        if self.profile:
            start = _time.perf_counter()
            value = self._query_tree(names, classes)
            self.profile_s += _time.perf_counter() - start
            self.profile_lookups += 1
            return value
        return self._query_tree(names, classes)

    def _query_tree(self, names, classes):
        slist = self.get_search_list(quark_list(names[:-1]),
                                     quark_list(classes[:-1]))
        return self.search(slist, quark(names[-1]), quark(classes[-1]))

    def query_naive(self, names, classes):
        """The retained pre-quark matcher: linear scan, recursive
        scoring.  Kept as the executable precedence specification; the
        differential test pins :meth:`query` against it."""
        if self.profile:
            start = _time.perf_counter()
            value = self._query_naive(names, classes)
            self.profile_s += _time.perf_counter() - start
            self.profile_lookups += 1
            return value
        return self._query_naive(names, classes)

    def _query_naive(self, names, classes):
        best_score = None
        best_value = None
        best_serial = -1
        for entry in self._entries:
            score = _match(entry, 0, names, classes, 0)
            if score is None:
                continue
            key = tuple(score)
            if (best_score is None or key > best_score
                    or (key == best_score and entry.serial > best_serial)):
                best_score = key
                best_value = entry.value
                best_serial = entry.serial
        return best_value

    # ------------------------------------------------------------------
    # Introspection (``info xrmstats``)

    def stats(self):
        hits, misses = self._stat_hits, self._stat_misses
        total = hits + misses
        return {
            "quarks": quark_count(),
            "entries": len(self._entries),
            "generation": self._generation,
            "generation_bumps": self._stat_generation_bumps,
            "searchlist_hits": hits,
            "searchlist_misses": misses,
            "searchlist_hit_rate": (hits / total) if total else 0.0,
            "cached_search_lists": len(self._search_cache),
            "searches": self._stat_searches,
        }

    def reset_stats(self):
        self._stat_hits = 0
        self._stat_misses = 0
        self._stat_searches = 0
        self._stat_generation_bumps = 0
        self.profile_s = 0.0
        self.profile_lookups = 0


def _match(entry, ei, names, classes, qi):
    """Recursive matcher; returns the per-level score list or None."""
    n_entry = len(entry.components)
    n_query = len(names)
    if ei == n_entry:
        return [] if qi == n_query else None
    if qi == n_query:
        return None
    component = entry.components[ei]
    binding = entry.bindings[ei]
    results = []
    # Try to match this component at this query level.
    quality = None
    if component == names[qi]:
        quality = _NAME_TIGHT if binding == "." else _NAME_LOOSE
    elif component == classes[qi]:
        quality = _CLASS_TIGHT if binding == "." else _CLASS_LOOSE
    elif component == "?":
        quality = _ANY_TIGHT if binding == "." else _ANY_LOOSE
    if quality is not None:
        rest = _match(entry, ei + 1, names, classes, qi + 1)
        if rest is not None:
            results.append([quality] + rest)
    # A loose binding may skip this query level entirely.
    if binding == "*":
        rest = _match(entry, ei, names, classes, qi + 1)
        if rest is not None:
            results.append([_SKIPPED] + rest)
    if not results:
        return None
    return max(results, key=tuple)
