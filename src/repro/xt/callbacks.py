"""Callback lists (XtCallbackList).

A callback resource holds an ordered list of callables invoked with
``(widget, call_data)``.  Wafe's Callback converter wraps Tcl command
strings into such callables; ``source`` preserves the original string so
``getValues`` can read a callback resource back -- the capability the
paper points out is *not* available in plain Xt ("Opposite to the X
Toolkit it is possible in Wafe to obtain the value of a callback
resource").
"""


class CallbackList:
    """An ordered list of (callable, source-string) callbacks."""

    def __init__(self, items=None, source=""):
        self._items = list(items) if items else []
        self.source = source

    def add(self, func, source=""):
        self._items.append(func)
        if source:
            self.source = (self.source + "\n" + source).strip()

    def remove(self, func):
        self._items = [f for f in self._items if f is not func]

    def call(self, widget, call_data=None):
        for func in list(self._items):
            try:
                func(widget, call_data)
            except Exception as exc:  # noqa: BLE001 -- firewall
                # One broken callback must not starve the rest of the
                # list or unwind the event loop.  XtCallCallbacks has
                # no error channel; route through the app context's
                # firewall when the widget is attached to one.
                app = getattr(widget, "app", None)
                if app is not None and hasattr(app, "report_exception"):
                    app.report_exception(
                        'callback on widget "%s"'
                        % getattr(widget, "name", "?"), exc)
                else:
                    raise

    def __len__(self):
        return len(self._items)

    def __bool__(self):
        return bool(self._items)

    def __repr__(self):  # pragma: no cover
        return "CallbackList(%d items, %r)" % (len(self._items), self.source)
