"""Resource descriptors and per-class resource lists.

An Xt resource has a *name* (``background``), a *class*
(``Background``), a representation *type* (``Pixel``) and a default.
Widget classes declare resource lists; subclasses inherit their
superclass's list and may add to it.  ``XtGetResourceList`` -- and
therefore Wafe's ``getResourceList`` -- reports the combined list, which
is how the paper's "42 resources on Label" number arises
(18 Core + 5 Simple + 9 ThreeD + 10 Label).
"""


from repro.xt.xrm import quark


class Resource:
    """One resource declaration.

    The name and class are interned to Xrm quarks at declaration time,
    so the per-widget resource loop hands integers straight to
    :meth:`repro.xt.xrm.XrmDatabase.search` without re-hashing strings.
    """

    __slots__ = ("name", "class_", "type", "default",
                 "name_quark", "class_quark")

    def __init__(self, name, class_, type, default=None):
        self.name = name
        self.class_ = class_
        self.type = type
        self.default = default
        self.name_quark = quark(name)
        self.class_quark = quark(class_)

    def __repr__(self):  # pragma: no cover
        return "Resource(%s:%s=%r)" % (self.name, self.type, self.default)


def res(name, type, default=None, class_=None):
    """Shorthand constructor; the class defaults to the capitalised name."""
    if class_ is None:
        class_ = name[0].upper() + name[1:]
    return Resource(name, class_, type, default)


# Representation type names (matching XtR* strings)
R_INT = "Int"
R_DIMENSION = "Dimension"
R_POSITION = "Position"
R_BOOLEAN = "Boolean"
R_STRING = "String"
R_PIXEL = "Pixel"
R_FONT = "FontStruct"
R_CALLBACK = "Callback"
R_TRANSLATIONS = "TranslationTable"
R_ACCELERATORS = "AcceleratorTable"
R_PIXMAP = "Pixmap"
R_BITMAP = "Bitmap"
R_JUSTIFY = "Justify"
R_ORIENTATION = "Orientation"
R_CURSOR = "Cursor"
R_WIDGET = "Widget"
R_SCREEN = "Screen"
R_COLORMAP = "Colormap"
R_POINTER = "Pointer"
R_EDIT_MODE = "EditMode"
R_XMSTRING = "XmString"
R_FONT_LIST = "FontList"
R_FLOAT = "Float"
R_SHAPE_STYLE = "ShapeStyle"
R_LIST = "StringList"


def merge_resource_lists(*lists):
    """Combine resource lists; later declarations override earlier ones
    with the same name (Xt semantics for subclass overrides)."""
    combined = {}
    order = []
    for resource_list in lists:
        for resource in resource_list:
            if resource.name not in combined:
                order.append(resource.name)
            combined[resource.name] = resource
    return [combined[name] for name in order]
