"""Shared bounded-LRU cache machinery for the Tcl compilation layer.

Every hot cache in the interpreter -- the script parse cache, the
compiled-script cache, and the expr AST cache -- is an :class:`LRUCache`
so eviction behaviour and instrumentation are uniform.  The previous
``ParseCache`` wholesale-cleared itself on reaching its size bound,
which thrashes steady-state workloads touching more than ``maxsize``
distinct scripts; true LRU (move-to-end on hit, evict oldest on
insert) keeps the working set resident.

Each cache counts hits, misses and evictions; ``info cachestats``
surfaces the counters and the benchmark harness records hit rates in
``BENCH_tcl_compile.json``.
"""

from collections import OrderedDict

__all__ = ["LRUCache"]


class LRUCache:
    """A bounded mapping with least-recently-used eviction and counters."""

    __slots__ = ("maxsize", "_data", "hits", "misses", "evictions")

    def __init__(self, maxsize=512):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        """Return the cached value or ``None``; a hit refreshes recency."""
        data = self._data
        value = data.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        data.move_to_end(key)
        return value

    def put(self, key, value):
        data = self._data
        if key in data:
            data.move_to_end(key)
        elif len(data) >= self.maxsize:
            data.popitem(last=False)
            self.evictions += 1
        data[key] = value
        return value

    def __len__(self):
        return len(self._data)

    def __contains__(self, key):
        return key in self._data

    def clear(self):
        """Drop all entries (counters are kept; see :meth:`reset_stats`)."""
        self._data.clear()

    def reset_stats(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self):
        """Counters plus the derived hit rate, as a plain dict."""
        lookups = self.hits + self.misses
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }
