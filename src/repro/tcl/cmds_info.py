"""Introspection commands: ``info`` and ``array``."""

from repro.tcl.errors import TclError
from repro.tcl.lists import list_to_string, string_to_list
from repro.tcl.cmds_string import glob_match

TCL_VERSION = "7.0"
TCL_PATCHLEVEL = "7.0 (repro)"


def _wrong_args(usage):
    raise TclError('wrong # args: should be "%s"' % usage)


def cmd_info(interp, argv):
    if len(argv) < 2:
        _wrong_args("info option ?arg arg ...?")
    option = argv[1]
    if option == "exists":
        if len(argv) != 3:
            _wrong_args("info exists varName")
        return "1" if interp.var_exists(argv[2]) else "0"
    if option == "commands":
        names = sorted(interp.commands)
        if len(argv) == 3:
            names = [n for n in names if glob_match(argv[2], n)]
        return list_to_string(names)
    if option == "procs":
        names = sorted(interp.procs)
        if len(argv) == 3:
            names = [n for n in names if glob_match(argv[2], n)]
        return list_to_string(names)
    if option == "body":
        if len(argv) != 3:
            _wrong_args("info body procname")
        proc = interp.procs.get(argv[2])
        if proc is None:
            raise TclError('"%s" isn\'t a procedure' % argv[2])
        return proc.body
    if option == "args":
        if len(argv) != 3:
            _wrong_args("info args procname")
        proc = interp.procs.get(argv[2])
        if proc is None:
            raise TclError('"%s" isn\'t a procedure' % argv[2])
        return list_to_string([name for name, _default in proc.formals])
    if option == "default":
        if len(argv) != 5:
            _wrong_args("info default procname arg varname")
        proc = interp.procs.get(argv[2])
        if proc is None:
            raise TclError('"%s" isn\'t a procedure' % argv[2])
        for name, default in proc.formals:
            if name == argv[3]:
                if default is None:
                    interp.set_var(argv[4], "")
                    return "0"
                interp.set_var(argv[4], default)
                return "1"
        raise TclError(
            'procedure "%s" doesn\'t have an argument "%s"' % (argv[2], argv[3])
        )
    if option == "globals":
        names = sorted(interp.global_frame.vars)
        if len(argv) == 3:
            names = [n for n in names if glob_match(argv[2], n)]
        return list_to_string(names)
    if option == "locals":
        frame = interp.current_frame
        if frame is interp.global_frame:
            return ""
        names = sorted(n for n, v in frame.vars.items() if v.kind != 2)
        if len(argv) == 3:
            names = [n for n in names if glob_match(argv[2], n)]
        return list_to_string(names)
    if option == "vars":
        names = sorted(interp.current_frame.vars)
        if len(argv) == 3:
            names = [n for n in names if glob_match(argv[2], n)]
        return list_to_string(names)
    if option == "level":
        if len(argv) == 2:
            return str(interp.current_frame.level)
        frame = interp.frame_at_level("#" + argv[2] if not argv[2].startswith("#") else argv[2])
        return list_to_string(frame.argv)
    if option == "cmdcount":
        return str(interp.cmd_count)
    if option == "cachestats":
        # ``info cachestats ?reset?``: hit/miss/eviction counters for
        # the parse, compile, and expr caches (the compilation layer's
        # introspection hook; the bench harness reads the same numbers
        # through interp.cache_stats()).
        if len(argv) == 3 and argv[2] == "reset":
            interp.reset_cache_stats()
            return ""
        if len(argv) != 2:
            _wrong_args("info cachestats ?reset?")
        rows = []
        for cache_name, stats in sorted(interp.cache_stats().items()):
            rows.append(cache_name)
            rows.append(list_to_string([
                "hits", str(stats["hits"]),
                "misses", str(stats["misses"]),
                "evictions", str(stats["evictions"]),
                "size", str(stats["size"]),
                "maxsize", str(stats["maxsize"]),
                "hitrate", "%.4f" % stats["hit_rate"],
            ]))
        return list_to_string(rows)
    if option == "evalstats":
        # ``info evalstats ?reset?``: the fault-containment counters --
        # configured limits, watchdog/recursion trips, peak nesting,
        # and Python-exception firewall catches (docs/ROBUSTNESS.md).
        if len(argv) == 3 and argv[2] == "reset":
            interp.reset_eval_stats()
            return ""
        if len(argv) != 2:
            _wrong_args("info evalstats ?reset?")
        stats = interp.eval_stats()
        trips = stats["limit_trips"]
        return list_to_string([
            "commands", str(stats["cmd_count"]),
            "recursionLimit", str(stats["recursion_limit"]),
            "peakNesting", str(stats["peak_nesting"]),
            "timeLimitMs", str(stats["time_limit_ms"]),
            "commandLimit", str(stats["command_limit"]),
            "commandTrips", str(trips["commands"]),
            "timeTrips", str(trips["time"]),
            "recursionTrips", str(trips["recursion"]),
            "firewallCatches", str(stats["firewall_catches"]),
            "hiddenCommands", str(stats["hidden_commands"]),
        ])
    if option == "hidden":
        # Safe-Tcl introspection: the commands hidden from this
        # interpreter (``interp hidden`` in real Tcl).
        names = sorted(interp.hidden_commands)
        if len(argv) == 3:
            names = [n for n in names if glob_match(argv[2], n)]
        return list_to_string(names)
    if option == "tclversion":
        return TCL_VERSION
    if option == "patchlevel":
        return TCL_PATCHLEVEL
    if option == "library":
        return ""
    if option == "script":
        return getattr(interp, "script_name", "")
    # Embedder extensions (Wafe registers ``info xrmstats`` here, the
    # Xrm counterpart of ``info cachestats``).
    extensions = getattr(interp, "info_extensions", {})
    extension = extensions.get(option)
    if extension is not None:
        return extension(interp, argv)
    options = sorted([
        "args", "body", "cachestats", "cmdcount", "commands", "default",
        "evalstats", "exists", "globals", "hidden", "level", "library",
        "locals", "patchlevel", "procs", "script", "tclversion", "vars",
    ] + list(extensions))
    raise TclError(
        'bad option "%s": should be %s, or %s'
        % (option, ", ".join(options[:-1]), options[-1])
    )


def cmd_array(interp, argv):
    if len(argv) < 3:
        _wrong_args("array option arrayName ?arg ...?")
    option, name = argv[1], argv[2]
    table = interp.array_of(name)
    if option == "exists":
        return "1" if table is not None else "0"
    if option == "names":
        if table is None:
            return ""
        names = sorted(table)
        if len(argv) == 4:
            names = [n for n in names if glob_match(argv[3], n)]
        return list_to_string(names)
    if option == "size":
        return str(len(table)) if table is not None else "0"
    if option == "get":
        if table is None:
            return ""
        pairs = []
        for key in sorted(table):
            if len(argv) == 4 and not glob_match(argv[3], key):
                continue
            pairs.extend([key, table[key]])
        return list_to_string(pairs)
    if option == "set":
        if len(argv) != 4:
            _wrong_args("array set arrayName list")
        items = string_to_list(argv[3])
        if len(items) % 2 != 0:
            raise TclError("list must have an even number of elements")
        for i in range(0, len(items), 2):
            interp.set_var(name, items[i + 1], index=items[i])
        return ""
    if option == "unset":
        if table is not None:
            if len(argv) == 4:
                for key in [k for k in table if glob_match(argv[3], k)]:
                    del table[key]
            else:
                interp.unset_var(name)
        return ""
    raise TclError(
        'bad option "%s": should be exists, get, names, set, size, or unset'
        % option
    )


def register(interp):
    interp.register("info", cmd_info)
    interp.register("array", cmd_array)
