"""Tcl result codes and the exceptions that carry them.

Tcl's C API returns ``TCL_OK``, ``TCL_ERROR``, ``TCL_RETURN``,
``TCL_BREAK`` or ``TCL_CONTINUE`` from every command.  In Python the
non-OK codes are naturally exceptions; ``catch`` converts them back to
numeric codes, exactly like the C implementation does.

This module also owns the *panic log*: the one place a Python-level
traceback is allowed to go.  The fault-containment contract (see
docs/ROBUSTNESS.md) is that an unexpected Python exception inside a
command or callback surfaces to scripts as a TclError carrying a
one-line summary, while the full traceback is written here -- to
stderr, or to a file when one is configured -- and never onto the
frontend/backend protocol.
"""

import sys
import traceback

#: errorInfo stops growing after this many stack frames; a hostile
#: 10,000-deep recursion must not unwind into a megabyte traceback.
ERRORINFO_FRAME_LIMIT = 25


class TclException(Exception):
    """Base class for all non-TCL_OK results."""

    code = 1


class TclError(TclException):
    """A Tcl-level error (TCL_ERROR).

    ``result`` is the interpreter result string (the error message);
    ``errorinfo`` accumulates the Tcl stack trace like the ``errorInfo``
    global variable in real Tcl, with ``errorcode`` mirroring
    ``errorCode``.  Parse errors additionally carry the 1-based
    ``line``/``col`` of the offending character in the string that was
    being parsed (None for non-parse errors), so tooling -- the linter,
    file mode -- can point at the exact position instead of just
    quoting the command.

    The remaining attributes are the traceback-accumulation state used
    by :meth:`Interp.call` while the exception unwinds:

    * ``info_started`` -- the first ``while executing`` frame has been
      appended (later frames say ``invoked from within``).
    * ``skip_frame`` -- suppress the next frame addition once; set by
      ``error msg info`` whose explicit errorInfo argument replaces
      the innermost frame (Tcl's documented semantics).
    * ``frames`` -- how many frames have been appended, so unwinding a
      deep recursion caps at :data:`ERRORINFO_FRAME_LIMIT`.
    * ``proc_line`` -- the source line of the most recently recorded
      command, consumed by ``call_proc`` for its
      ``(procedure "name" line N)`` marker.
    """

    code = 1

    def __init__(self, result, errorinfo=None, line=None, col=None,
                 errorcode=None):
        super().__init__(result)
        self.result = result
        self.errorinfo = errorinfo if errorinfo is not None else result
        self.errorcode = errorcode
        self.line = line
        self.col = col
        self.info_started = False
        self.skip_frame = False
        self.frames = 0
        self.proc_line = None


class TclLimitError(TclError):
    """An eval resource limit tripped (``evalLimit`` command/time).

    A subclass so generic ``except TclError`` reporting still works,
    but ``catch`` deliberately re-raises it: a hostile
    ``catch {while 1 {}}`` must not be able to swallow its own
    termination.  The exception stops propagating at the top-level
    eval boundary (``Interp`` disarms the limits there), so the
    enclosing backend line fails and the event loop lives on.
    """

    def __init__(self, result, limit):
        super().__init__(result)
        self.limit = limit  # "commands" | "time"


class TclReturn(TclException):
    """``return`` was invoked (TCL_RETURN)."""

    code = 2

    def __init__(self, result=""):
        super().__init__(result)
        self.result = result


class TclBreak(TclException):
    """``break`` was invoked outside the interpreter's control (TCL_BREAK)."""

    code = 3

    def __init__(self):
        super().__init__("invoked \"break\" outside of a loop")
        self.result = ""


class TclContinue(TclException):
    """``continue`` was invoked (TCL_CONTINUE)."""

    code = 4

    def __init__(self):
        super().__init__("invoked \"continue\" outside of a loop")
        self.result = ""


# ----------------------------------------------------------------------
# The panic log (the only sanctioned sink for Python tracebacks).

_panic_log_path = None


def set_panic_log(path):
    """Route firewall tracebacks to ``path`` (None: stderr only)."""
    global _panic_log_path
    _panic_log_path = path or None


def get_panic_log():
    return _panic_log_path


def log_panic(context, exc=None):
    """Record a contained Python exception; returns the one-line summary.

    The summary (``ExcType: message``) is what the TclError shown to
    scripts carries; the full traceback goes to stderr and, when
    configured, to the panic log file.  Logging failures are swallowed:
    the firewall must never raise.
    """
    if exc is None:
        exc = sys.exc_info()[1]
    summary = "%s: %s" % (type(exc).__name__, exc)
    detail = "wafe: panic: contained Python exception in %s\n%s" % (
        context,
        "".join(traceback.format_exception(type(exc), exc,
                                           exc.__traceback__)))
    try:
        sys.stderr.write(detail)
    except (OSError, ValueError):
        pass
    if _panic_log_path is not None:
        try:
            with open(_panic_log_path, "a") as handle:
                handle.write(detail)
        except OSError:
            pass
    return summary
