"""Tcl result codes and the exceptions that carry them.

Tcl's C API returns ``TCL_OK``, ``TCL_ERROR``, ``TCL_RETURN``,
``TCL_BREAK`` or ``TCL_CONTINUE`` from every command.  In Python the
non-OK codes are naturally exceptions; ``catch`` converts them back to
numeric codes, exactly like the C implementation does.
"""


class TclException(Exception):
    """Base class for all non-TCL_OK results."""

    code = 1


class TclError(TclException):
    """A Tcl-level error (TCL_ERROR).

    ``result`` is the interpreter result string (the error message);
    ``errorinfo`` accumulates the Tcl stack trace like the ``errorInfo``
    global variable in real Tcl.  Parse errors additionally carry the
    1-based ``line``/``col`` of the offending character in the string
    that was being parsed (None for non-parse errors), so tooling --
    the linter, file mode -- can point at the exact position instead of
    just quoting the command.
    """

    code = 1

    def __init__(self, result, errorinfo=None, line=None, col=None):
        super().__init__(result)
        self.result = result
        self.errorinfo = errorinfo if errorinfo is not None else result
        self.line = line
        self.col = col


class TclReturn(TclException):
    """``return`` was invoked (TCL_RETURN)."""

    code = 2

    def __init__(self, result=""):
        super().__init__(result)
        self.result = result


class TclBreak(TclException):
    """``break`` was invoked outside the interpreter's control (TCL_BREAK)."""

    code = 3

    def __init__(self):
        super().__init__("invoked \"break\" outside of a loop")
        self.result = ""


class TclContinue(TclException):
    """``continue`` was invoked (TCL_CONTINUE)."""

    code = 4

    def __init__(self):
        super().__init__("invoked \"continue\" outside of a loop")
        self.result = ""
