"""Compiled executable forms of parsed Tcl scripts.

The parser produces a substitution-free tree; this module turns that
tree into the cheapest shape that can still honour Tcl's late-binding
semantics.  Three observations drive the design:

* Most words in real Wafe scripts are pure literals, so most commands
  have a fully-literal argv that can be computed **once** at compile
  time.  Execution then skips word-walking entirely and goes straight
  to dispatch.
* Commands are looked up by name **at call time**, never bound at
  compile time: ``proc`` redefinition, ``rename``, and the ``unknown``
  fallback must behave identically whether or not a script was cached.
  A compiled command therefore stores strings, not function objects,
  and routes through :meth:`Interp.call` like uncompiled evaluation.
* Mixed words reduce to a small *substitution plan*: a flat tuple of
  (opcode, payload) steps with dedicated fast opcodes for the two
  overwhelmingly common shapes, a bare ``$var`` word and a bare
  ``[cmd]`` word.

A :class:`CompiledScript` is immutable and interpreter-independent, so
``Interp`` memoises them in a per-interp LRU keyed on the script text
(``eval`` of a repeated callback string skips parse *and* compile).
"""

from repro.tcl import bytecode as _bc
from repro.tcl import parser as _parser
from repro.tcl.errors import TclError
from repro.tcl.expr import (
    _binary,
    _truth,
    call_math_func,
    compile_expr,
    unary_op,
)
from repro.tcl.lists import string_to_list

__all__ = [
    "CompiledScript",
    "compile_script",
    "compile_command",
    "compile_script_bytecode",
]

# Substitution-plan opcodes.
OP_LITERAL = 0  # payload: the word's final string
OP_VAR = 1      # payload: variable name (no array index)
OP_VARIDX = 2   # payload: (name, index_parts)
OP_CMD = 3      # payload: nested script string
OP_PARTS = 4    # payload: the word's raw parts (general fallback)


class _NoopCommand:
    """A command whose (literal) first word is empty: evaluates to ""."""

    __slots__ = ()

    def execute(self, interp):
        return ""


_NOOP = _NoopCommand()


class _LiteralCommand:
    """All words literal: argv precomputed once, dispatch per call.

    ``execute`` hands :meth:`Interp.call` a fresh list so a command
    implementation that mutates its argv cannot corrupt the cache, and
    the command *name* is re-resolved inside ``call`` on every
    invocation -- redefinition and ``rename`` take effect immediately
    even for cached scripts.  ``line`` is the command's 1-based source
    line, precomputed at compile time and handed to ``call`` for
    errorInfo's ``(procedure ... line N)`` markers.
    """

    __slots__ = ("argv", "line")

    def __init__(self, argv, line=1):
        self.argv = argv  # tuple of str
        self.line = line

    def execute(self, interp):
        return interp.call(list(self.argv), self.line)


class _DynamicCommand:
    """At least one word needs substitution: run the precomputed plan."""

    __slots__ = ("plan", "line")

    def __init__(self, plan, line=1):
        self.plan = plan  # tuple of (opcode, payload)
        self.line = line

    def execute(self, interp):
        argv = []
        append = argv.append
        for op, payload in self.plan:
            if op == OP_LITERAL:
                append(payload)
            elif op == OP_VAR:
                append(interp.get_var(payload))
            elif op == OP_CMD:
                append(interp.eval(payload))
            elif op == OP_VARIDX:
                name, index_parts = payload
                append(interp.get_var(
                    name, interp._substitute_parts(index_parts)))
            else:
                append(interp._substitute_parts(payload))
        if argv[0] == "":
            return ""
        return interp.call(argv, self.line)


class CompiledScript:
    """An executable sequence of compiled commands.

    ``source`` keeps the original script text so errors that occur
    before any command frame exists (substitution failures) can still
    start their errorInfo from a script excerpt, matching uncompiled
    evaluation.
    """

    __slots__ = ("commands", "source")

    def __init__(self, commands, source=""):
        self.commands = commands
        self.source = source

    def execute(self, interp):
        result = ""
        for command in self.commands:
            result = command.execute(interp)
        return result


def _compile_word(word):
    """One plan step for a parsed word."""
    parts = word.parts
    if len(parts) == 1:
        kind, payload = parts[0]
        if kind == _parser.LITERAL:
            return (OP_LITERAL, payload)
        if kind == _parser.VARSUB:
            name, index_parts = payload
            if index_parts is None:
                return (OP_VAR, name)
            return (OP_VARIDX, payload)
        return (OP_CMD, payload)
    return (OP_PARTS, parts)


def compile_command(parsed, line=1):
    """Compile one :class:`~repro.tcl.parser.ParsedCommand`."""
    plan = tuple(_compile_word(word) for word in parsed.words)
    if all(op == OP_LITERAL for op, __ in plan):
        argv = tuple(payload for __, payload in plan)
        if argv[0] == "":
            return _NOOP
        return _LiteralCommand(argv, line)
    return _DynamicCommand(plan, line)


def compile_script(parsed_commands, source=""):
    """Compile a parsed script (list of commands) to executable form.

    Source lines for the commands are derived in one incremental pass
    over ``source`` (commands arrive in ascending ``pos`` order), so
    line accounting costs O(len(source)) total at compile time and
    nothing at execution time.
    """
    compiled = []
    line = 1
    scan = 0
    for cmd in parsed_commands:
        pos = cmd.pos
        if source and pos > scan:
            line += source.count("\n", scan, pos)
            scan = pos
        compiled.append(compile_command(cmd, line))
    return CompiledScript(compiled, source)


# ======================================================================
# The script -> bytecode emitter (the VM front end)
#
# Statement-level compilation for the hot builtins (set/incr/expr and
# the control constructs), falling back to the plan layer above for
# everything else.  An inline op is emitted only when
#
# * the command name is literal and bound to the expected builtin *at
#   compile time* (a different binding means someone already renamed
#   it; the op would deopt on every execution),
# * the words the construct consumes structurally (variable names,
#   loop bodies, conditions) are literal with the right arity, exactly
#   as the builtin itself would see them, and
# * nested bodies parse -- an unparseable body falls back to the plan
#   path so "a loop that never runs never parses its body" still holds.
#
# Every inline op carries the plan-compiled fallback command; the VM
# dispatches it whenever the command binding check fails, so ``rename
# set assign`` behaves identically on cached bytecode.

def _plain_name(name):
    """True when ``name`` is not an ``a(b)`` array reference.

    Mirrors :func:`repro.tcl.interp.split_varname`'s test so the fast
    paths and the slow paths agree on which names are scalars.
    """
    return not (name.endswith(")") and "(" in name)


def _literal_argv(words):
    argv = []
    for word in words:
        if not word.is_literal():
            return None
        argv.append(word.literal_value())
    return argv


def _try_compile_block(script, interp):
    """Compile a nested body; None when it does not parse (stay lazy)."""
    try:
        parsed = interp.parse_cache.get(script)
    except TclError:
        return None
    return compile_script_bytecode(parsed, script, interp)


def _emit_value_word(word, interp):
    """A word descriptor for an argument position (set value, incr
    delta, foreach list): may be dynamic without blocking inlining."""
    parts = word.parts
    if len(parts) == 1:
        kind, payload = parts[0]
        if kind == _parser.LITERAL:
            num = None
            try:
                num = int(payload)
            except ValueError:
                pass
            if num is not None and str(num) != payload:
                num = None
            return (_bc.W_CONST, payload, num)
        if kind == _parser.VARSUB:
            name, index_parts = payload
            if index_parts is not None:
                return (_bc.W_VARIDX, payload)
            if _plain_name(name):
                return (_bc.W_VAR, _bc.new_word_cell(), name)
            return (_bc.W_PARTS, parts)  # ${a(b)}: get_var must split
        code = _try_compile_block(payload, interp)
        if code is not None:
            return (_bc.W_CODE, code)
        return (_bc.W_CMD, payload)
    return (_bc.W_PARTS, parts)


def _scalar_name(words, i):
    """The literal scalar variable name at word ``i``, or None."""
    if not words[i].is_literal():
        return None
    name = words[i].literal_value()
    if not _plain_name(name):
        return None
    return name


def _emit_set(cmd, line, interp, func):
    words = cmd.words
    if len(words) not in (2, 3):
        return None
    name = _scalar_name(words, 1)
    if name is None:
        return None
    fallback = compile_command(cmd, line)
    if len(words) == 2:
        return (_bc.OP_SETRD, _bc.new_cell(), name, line, fallback, func)
    word = _emit_value_word(words[2], interp)
    return (_bc.OP_SET, _bc.new_cell(), name, word, line, fallback, func)


def _emit_incr(cmd, line, interp, func):
    words = cmd.words
    if len(words) not in (2, 3):
        return None
    name = _scalar_name(words, 1)
    if name is None:
        return None
    dconst = None
    dword = None
    dlit = None
    if len(words) == 3:
        if words[2].is_literal():
            dlit = words[2].literal_value()
            try:
                dconst = int(dlit)
            except ValueError:
                return None  # plan path raises the exact incr error
        else:
            dword = _emit_value_word(words[2], interp)
    fallback = compile_command(cmd, line)
    return (_bc.OP_INCR, _bc.new_cell(), name, dconst, dword, dlit,
            line, fallback, func)


def _emit_expr(cmd, line, interp, func):
    argv = _literal_argv(cmd.words)
    if argv is None or len(argv) < 2:
        return None
    text = argv[1] if len(argv) == 2 else " ".join(argv[1:])
    try:
        ast = compile_expr(text)
    except TclError:
        return None  # plan path reports the parse error per call
    prog = _compile_expr_program(ast, interp)
    fallback = compile_command(cmd, line)
    frame_text = " ".join(argv)[:150]
    return (_bc.OP_EXPR, _bc.new_cell(), prog, frame_text, line,
            fallback, func)


def _emit_if(cmd, line, interp, func):
    argv = _literal_argv(cmd.words)
    if argv is None:
        return None
    # Mirror cmd_if's argument walk; any shape where the walk could
    # raise wrong-#-args for *some* condition outcome stays generic so
    # the builtin produces its exact (lazily-discovered) errors.
    n = len(argv)
    i = 1
    clauses = []
    else_code = None
    while True:
        if i >= n:
            return None
        condition = argv[i]
        i += 1
        if i < n and argv[i] == "then":
            i += 1
        if i >= n:
            return None
        body = argv[i]
        i += 1
        body_code = _try_compile_block(body, interp)
        if body_code is None:
            return None
        clauses.append((_compile_cond(condition, interp), body_code))
        if i >= n:
            break
        if argv[i] == "elseif":
            i += 1
            continue
        if argv[i] == "else":
            i += 1
        if i >= n or i != n - 1:
            return None
        else_code = _try_compile_block(argv[i], interp)
        if else_code is None:
            return None
        break
    fallback = compile_command(cmd, line)
    text = " ".join(argv)[:150]
    return (_bc.OP_IF, _bc.new_cell(), tuple(clauses), else_code, text,
            line, fallback, func)


def _emit_while(cmd, line, interp, func):
    argv = _literal_argv(cmd.words)
    if argv is None or len(argv) != 3:
        return None
    body_code = _try_compile_block(argv[2], interp)
    if body_code is None:
        return None
    cond = _compile_cond(argv[1], interp)
    fallback = compile_command(cmd, line)
    text = " ".join(argv)[:150]
    return (_bc.OP_WHILE, _bc.new_cell(), cond, body_code, text, line,
            fallback, func)


def _emit_for(cmd, line, interp, func):
    argv = _literal_argv(cmd.words)
    if argv is None or len(argv) != 5:
        return None
    start_code = _try_compile_block(argv[1], interp)
    next_code = _try_compile_block(argv[3], interp)
    body_code = _try_compile_block(argv[4], interp)
    if start_code is None or next_code is None or body_code is None:
        return None
    cond = _compile_cond(argv[2], interp)
    fuse = _detect_for_fuse(start_code, cond, next_code)
    fallback = compile_command(cmd, line)
    text = " ".join(argv)[:150]
    return (_bc.OP_FOR, _bc.new_cell(), start_code, cond, next_code,
            body_code, fuse, text, line, fallback, func)


def _detect_for_fuse(start_code, cond, next_code):
    """Recognise the integer-range ``for`` shape for the fused loop.

    Requires: start is a single ``set var <intconst>``, the condition
    is fused (``$var <cmp> intconst`` on the same variable), and next
    is a single constant-delta ``incr`` of the same variable.  The
    returned tuple shares the condition's E_LOAD cell so the fused
    loop's variable checks and the generic condition agree.
    """
    fused_cond = cond[3]
    if fused_cond is None:
        return None
    name = fused_cond[1]
    if len(start_code.ops) != 1 or len(next_code.ops) != 1:
        return None
    start_op = start_code.ops[0]
    if (start_op[0] != _bc.OP_SET or start_op[2] != name
            or start_op[3][0] != _bc.W_CONST or start_op[3][2] is None):
        return None
    next_op = next_code.ops[0]
    if (next_op[0] != _bc.OP_INCR or next_op[2] != name
            or next_op[3] is None):
        return None
    return (fused_cond[0], name, fused_cond[2], fused_cond[3],
            next_op[3], next_op[8])


def _emit_foreach(cmd, line, interp, func):
    words = cmd.words
    if len(words) != 4:
        return None
    name = _scalar_name(words, 1)
    if name is None:
        return None
    if not words[3].is_literal():
        return None
    body_code = _try_compile_block(words[3].literal_value(), interp)
    if body_code is None:
        return None
    items = None
    text = None
    if words[2].is_literal():
        literal = words[2].literal_value()
        list_word = (_bc.W_CONST, literal, None)
        try:
            items = tuple(string_to_list(literal))
        except TclError:
            items = None  # the VM re-parses and raises like the builtin
        text = " ".join(
            ("foreach", name, literal, words[3].literal_value()))[:150]
    else:
        list_word = _emit_value_word(words[2], interp)
    fallback = compile_command(cmd, line)
    return (_bc.OP_FOREACH, _bc.new_cell(), name, items, list_word,
            body_code, text, line, fallback, func)


# ----------------------------------------------------------------------
# Conditions and expr programs

_E_BINOP = {
    "+": _bc.E_ADD,
    "-": _bc.E_SUB,
    "*": _bc.E_MUL,
    "<": _bc.E_LT,
    ">": _bc.E_GT,
    "<=": _bc.E_LE,
    ">=": _bc.E_GE,
    "==": _bc.E_EQ,
    "!=": _bc.E_NE,
}

_CMP_FROM_E = {
    _bc.E_LT: _bc.CMP_LT,
    _bc.E_GT: _bc.CMP_GT,
    _bc.E_LE: _bc.CMP_LE,
    _bc.E_GE: _bc.CMP_GE,
    _bc.E_EQ: _bc.CMP_EQ,
    _bc.E_NE: _bc.CMP_NE,
}


def _compile_cond(text, interp):
    """A condition tuple ``(prog, text, fallback_word, fused, truth)``.

    ``prog`` None means the text does not parse as an expression; the
    VM then calls ``eval_expr_truth`` per iteration, which reproduces
    the bare-boolean-word fallback and error behaviour exactly.
    ``truth`` is a precomputed boolean when the optimizer proved the
    condition constant (see :mod:`repro.tcl.optimize`), else None.
    """
    stripped = text.strip()
    fallback_word = stripped if (stripped and stripped.isalnum()) else None
    try:
        ast = compile_expr(text)
    except TclError:
        return (None, text, fallback_word, None, None)
    prog = _compile_expr_program(ast, interp)
    fused = None
    if (len(prog) == 3 and prog[0][0] == _bc.E_LOAD
            and prog[1][0] == _bc.E_CONST and type(prog[1][1]) is int):
        cmp = _CMP_FROM_E.get(prog[2][0])
        if cmp is not None:
            fused = (prog[0][1], prog[0][2], cmp, prog[1][1])
    return (prog, text, fallback_word, fused, None)


def _fold_expr(node):
    """Compile-time constant folding over the expr AST.

    Folds only when the operation succeeds; a folding error keeps the
    node so the identical TclError is raised at run time (``1/0`` must
    fail per evaluation, not at compile).  Short-circuit folding keeps
    the lazy semantics: a constant-false ``&&`` left arm drops the
    right arm entirely, just as the walker never evaluates it.
    """
    kind = node[0]
    if kind == "unary":
        a = _fold_expr(node[2])
        if a[0] == "val":
            try:
                return ("val", unary_op(node[1], a[1]))
            except TclError:
                pass
        return ("unary", node[1], a)
    if kind == "binary":
        a = _fold_expr(node[2])
        b = _fold_expr(node[3])
        if a[0] == "val" and b[0] == "val":
            try:
                return ("val", _binary(node[1], a[1], b[1]))
            except TclError:
                pass
        return ("binary", node[1], a, b)
    if kind == "andor":
        a = _fold_expr(node[2])
        b = _fold_expr(node[3])
        if a[0] == "val":
            try:
                left = _truth(a[1])
            except TclError:
                return ("andor", node[1], a, b)
            if node[1] == "&&" and not left:
                return ("val", 0)
            if node[1] == "||" and left:
                return ("val", 1)
            if b[0] == "val":
                try:
                    return ("val", 1 if _truth(b[1]) else 0)
                except TclError:
                    pass
        return ("andor", node[1], a, b)
    if kind == "ternary":
        c = _fold_expr(node[1])
        a = _fold_expr(node[2])
        b = _fold_expr(node[3])
        if c[0] == "val":
            try:
                truth = _truth(c[1])
            except TclError:
                return ("ternary", c, a, b)
            return a if truth else b
        return ("ternary", c, a, b)
    if kind == "func":
        args = [_fold_expr(arg) for arg in node[2]]
        if all(arg[0] == "val" for arg in args):
            try:
                return ("val", call_math_func(
                    node[1], [arg[1] for arg in args]))
            except TclError:
                pass
        return ("func", node[1], args)
    if kind == "quoted":
        pieces = node[1]
        if all(isinstance(piece, str) for piece in pieces):
            return ("val", "".join(pieces))
        return node
    return node  # val, varref, cmdref


def _emit_expr_node(node, ops, interp):
    kind = node[0]
    if kind == "val":
        ops.append((_bc.E_CONST, node[1]))
    elif kind == "varref":
        name, index_parts = node[1]
        if index_parts is None and _plain_name(name):
            ops.append((_bc.E_LOAD, _bc.new_word_cell(), name))
        else:
            ops.append((_bc.E_LOADX, node[1]))
    elif kind == "cmdref":
        code = _try_compile_block(node[1], interp)
        if code is not None:
            ops.append((_bc.E_CODE, code))
        else:
            ops.append((_bc.E_CMD, node[1]))
    elif kind == "quoted":
        ops.append((_bc.E_QUOTED, node[1]))
    elif kind == "unary":
        _emit_expr_node(node[2], ops, interp)
        ops.append((_bc.E_UNARY, node[1]))
    elif kind == "binary":
        _emit_expr_node(node[2], ops, interp)
        _emit_expr_node(node[3], ops, interp)
        opcode = _E_BINOP.get(node[1])
        if opcode is not None:
            ops.append((opcode,))
        else:
            ops.append((_bc.E_BIN, node[1]))
    elif kind == "andor":
        _emit_expr_node(node[2], ops, interp)
        jump_at = len(ops)
        ops.append(None)
        _emit_expr_node(node[3], ops, interp)
        ops.append((_bc.E_TRUTH,))
        opcode = _bc.E_AND if node[1] == "&&" else _bc.E_OR
        ops[jump_at] = (opcode, len(ops))
    elif kind == "ternary":
        _emit_expr_node(node[1], ops, interp)
        jfalse_at = len(ops)
        ops.append(None)
        _emit_expr_node(node[2], ops, interp)
        jump_at = len(ops)
        ops.append(None)
        ops[jfalse_at] = (_bc.E_JFALSE, len(ops))
        _emit_expr_node(node[3], ops, interp)
        ops[jump_at] = (_bc.E_JUMP, len(ops))
    elif kind == "func":
        for arg in node[2]:
            _emit_expr_node(arg, ops, interp)
        ops.append((_bc.E_FUNC, node[1], len(node[2])))
    else:  # pragma: no cover - parser produces no other node kinds
        raise TclError("internal expr error: bad node %r" % (kind,))


def _compile_expr_program(ast, interp):
    ops = []
    _emit_expr_node(_fold_expr(ast), ops, interp)
    return tuple(ops)


# ----------------------------------------------------------------------
# The statement dispatcher

_INLINE = None


def _inline_table():
    # Built lazily: cmds_core imports from interp, which imports this
    # module, so a top-level import here would cycle.
    global _INLINE
    if _INLINE is None:
        from repro.tcl import cmds_core
        _INLINE = {
            "set": (cmds_core.cmd_set, _emit_set),
            "incr": (cmds_core.cmd_incr, _emit_incr),
            "expr": (cmds_core.cmd_expr, _emit_expr),
            "if": (cmds_core.cmd_if, _emit_if),
            "while": (cmds_core.cmd_while, _emit_while),
            "for": (cmds_core.cmd_for, _emit_for),
            "foreach": (cmds_core.cmd_foreach, _emit_foreach),
        }
    return _INLINE


def compile_script_bytecode(parsed_commands, source, interp):
    """Compile a parsed script to a :class:`repro.tcl.bytecode.Code`.

    Unlike the plan layer, bytecode is interpreter-*specific*: inline
    ops embed the expected builtin function for their binding check,
    and cache cells bind to the interp's frames.  ``Interp`` therefore
    memoises these in its own ``bytecode_cache``.
    """
    table = _inline_table()
    ops = []
    inline_count = 0
    line = 1
    scan = 0
    commands = interp.commands
    for cmd in parsed_commands:
        pos = cmd.pos
        if source and pos > scan:
            line += source.count("\n", scan, pos)
            scan = pos
        op = None
        first = cmd.words[0]
        if first.is_literal():
            entry = table.get(first.literal_value())
            if entry is not None and commands.get(
                    first.literal_value()) is entry[0]:
                op = entry[1](cmd, line, interp, entry[0])
        if op is None:
            ops.append((_bc.OP_CALL, compile_command(cmd, line)))
        else:
            inline_count += 1
            ops.append(op)
    generic_count = len(ops) - inline_count
    stats = interp._vm_stats
    stats["scripts"] += 1
    stats["inline_ops"] += inline_count
    stats["generic_ops"] += generic_count
    code = _bc.Code(tuple(ops), source, inline_count, generic_count)
    if interp.optimize:
        # Nested blocks were compiled (and optimized) by the recursive
        # _try_compile_block calls above, so one pass over this level's
        # ops sees already-folded children.
        from repro.tcl.optimize import optimize_code

        code = optimize_code(code, interp)
    return code
