"""Compiled executable forms of parsed Tcl scripts.

The parser produces a substitution-free tree; this module turns that
tree into the cheapest shape that can still honour Tcl's late-binding
semantics.  Three observations drive the design:

* Most words in real Wafe scripts are pure literals, so most commands
  have a fully-literal argv that can be computed **once** at compile
  time.  Execution then skips word-walking entirely and goes straight
  to dispatch.
* Commands are looked up by name **at call time**, never bound at
  compile time: ``proc`` redefinition, ``rename``, and the ``unknown``
  fallback must behave identically whether or not a script was cached.
  A compiled command therefore stores strings, not function objects,
  and routes through :meth:`Interp.call` like uncompiled evaluation.
* Mixed words reduce to a small *substitution plan*: a flat tuple of
  (opcode, payload) steps with dedicated fast opcodes for the two
  overwhelmingly common shapes, a bare ``$var`` word and a bare
  ``[cmd]`` word.

A :class:`CompiledScript` is immutable and interpreter-independent, so
``Interp`` memoises them in a per-interp LRU keyed on the script text
(``eval`` of a repeated callback string skips parse *and* compile).
"""

from repro.tcl import parser as _parser

__all__ = ["CompiledScript", "compile_script", "compile_command"]

# Substitution-plan opcodes.
OP_LITERAL = 0  # payload: the word's final string
OP_VAR = 1      # payload: variable name (no array index)
OP_VARIDX = 2   # payload: (name, index_parts)
OP_CMD = 3      # payload: nested script string
OP_PARTS = 4    # payload: the word's raw parts (general fallback)


class _NoopCommand:
    """A command whose (literal) first word is empty: evaluates to ""."""

    __slots__ = ()

    def execute(self, interp):
        return ""


_NOOP = _NoopCommand()


class _LiteralCommand:
    """All words literal: argv precomputed once, dispatch per call.

    ``execute`` hands :meth:`Interp.call` a fresh list so a command
    implementation that mutates its argv cannot corrupt the cache, and
    the command *name* is re-resolved inside ``call`` on every
    invocation -- redefinition and ``rename`` take effect immediately
    even for cached scripts.  ``line`` is the command's 1-based source
    line, precomputed at compile time and handed to ``call`` for
    errorInfo's ``(procedure ... line N)`` markers.
    """

    __slots__ = ("argv", "line")

    def __init__(self, argv, line=1):
        self.argv = argv  # tuple of str
        self.line = line

    def execute(self, interp):
        return interp.call(list(self.argv), self.line)


class _DynamicCommand:
    """At least one word needs substitution: run the precomputed plan."""

    __slots__ = ("plan", "line")

    def __init__(self, plan, line=1):
        self.plan = plan  # tuple of (opcode, payload)
        self.line = line

    def execute(self, interp):
        argv = []
        append = argv.append
        for op, payload in self.plan:
            if op == OP_LITERAL:
                append(payload)
            elif op == OP_VAR:
                append(interp.get_var(payload))
            elif op == OP_CMD:
                append(interp.eval(payload))
            elif op == OP_VARIDX:
                name, index_parts = payload
                append(interp.get_var(
                    name, interp._substitute_parts(index_parts)))
            else:
                append(interp._substitute_parts(payload))
        if argv[0] == "":
            return ""
        return interp.call(argv, self.line)


class CompiledScript:
    """An executable sequence of compiled commands.

    ``source`` keeps the original script text so errors that occur
    before any command frame exists (substitution failures) can still
    start their errorInfo from a script excerpt, matching uncompiled
    evaluation.
    """

    __slots__ = ("commands", "source")

    def __init__(self, commands, source=""):
        self.commands = commands
        self.source = source

    def execute(self, interp):
        result = ""
        for command in self.commands:
            result = command.execute(interp)
        return result


def _compile_word(word):
    """One plan step for a parsed word."""
    parts = word.parts
    if len(parts) == 1:
        kind, payload = parts[0]
        if kind == _parser.LITERAL:
            return (OP_LITERAL, payload)
        if kind == _parser.VARSUB:
            name, index_parts = payload
            if index_parts is None:
                return (OP_VAR, name)
            return (OP_VARIDX, payload)
        return (OP_CMD, payload)
    return (OP_PARTS, parts)


def compile_command(parsed, line=1):
    """Compile one :class:`~repro.tcl.parser.ParsedCommand`."""
    plan = tuple(_compile_word(word) for word in parsed.words)
    if all(op == OP_LITERAL for op, __ in plan):
        argv = tuple(payload for __, payload in plan)
        if argv[0] == "":
            return _NOOP
        return _LiteralCommand(argv, line)
    return _DynamicCommand(plan, line)


def compile_script(parsed_commands, source=""):
    """Compile a parsed script (list of commands) to executable form.

    Source lines for the commands are derived in one incremental pass
    over ``source`` (commands arrive in ascending ``pos`` order), so
    line accounting costs O(len(source)) total at compile time and
    nothing at execution time.
    """
    compiled = []
    line = 1
    scan = 0
    for cmd in parsed_commands:
        pos = cmd.pos
        if source and pos > scan:
            line += source.count("\n", scan, pos)
            scan = pos
        compiled.append(compile_command(cmd, line))
    return CompiledScript(compiled, source)
