"""The ``expr`` expression language.

Implements Tcl's C-like expression evaluator: integer, floating point
and string operands; the full operator set with C precedence including
the ternary conditional; lazy ``&&``/``||`` and lazy ternary branches;
math functions; and inline ``$variable`` and ``[command]`` substitution
(needed when expressions are passed in braces, which is the idiomatic
form in loop conditions).

The evaluator parses to a small AST first and walks it afterwards, so
short-circuited operands are neither substituted nor executed -- Tcl's
documented behaviour, and what makes ``expr {$i < $n && [step]}`` safe.

Numbers follow Tcl's reading rules: leading ``0x`` is hex, a leading
``0`` is octal, and anything with ``.``, ``e`` or ``E`` is a double.
Results are rendered back to strings with ``%.12g`` for doubles (the
modern ``tcl_precision`` default), plain decimal for integers.
"""

import math

from repro.tcl.cache import LRUCache
from repro.tcl.errors import TclError
from repro.tcl.parser import backslash_char, parse_varsub, VARSUB


def format_number(value):
    """Render a Python number as Tcl's expr would."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            raise TclError("domain error: argument not in valid range")
        text = "%.12g" % value
        # Tcl always renders doubles recognisably as doubles.
        if "." not in text and "e" not in text and "n" not in text and "i" not in text:
            text += ".0"
        return text
    return value


def parse_number(text):
    """Parse a string into int or float per Tcl rules, or return None."""
    s = text.strip()
    if not s:
        return None
    try:
        negate = False
        body = s
        if body[0] in "+-":
            negate = body[0] == "-"
            body = body[1:]
        if body[:2].lower() == "0x":
            value = int(body[2:], 16)
            return -value if negate else value
        if (
            body.startswith("0")
            and len(body) > 1
            and all(c in "01234567" for c in body[1:])
        ):
            value = int(body, 8)
            return -value if negate else value
        return int(s, 10)
    except ValueError:
        pass
    try:
        return float(s)
    except ValueError:
        return None


def is_true(value):
    """Tcl boolean coercion: numbers, plus yes/no/true/false/on/off."""
    if isinstance(value, (int, float)):
        return value != 0
    number = parse_number(value)
    if number is not None:
        return number != 0
    lowered = value.lower()
    if lowered in ("yes", "true", "on"):
        return True
    if lowered in ("no", "false", "off"):
        return False
    raise TclError('expected boolean value but got "%s"' % value)


_OPERATOR_CHARS = "+-*/%<>=!&|^~?:(),"
_TWO_CHAR_OPS = ("<<", ">>", "<=", ">=", "==", "!=", "&&", "||")


class _Lexer:
    """Tokenizer.  Substitutions become deferred AST leaves, not values."""

    def __init__(self, text):
        self.text = text
        self.pos = 0
        self.token = None
        self.advance()

    def error(self, message=None):
        raise TclError(
            'syntax error in expression "%s"%s'
            % (self.text, ": " + message if message else "")
        )

    def advance(self):
        text = self.text
        n = len(text)
        i = self.pos
        while i < n and text[i] in " \t\n\r":
            i += 1
        if i >= n:
            self.token = (None, None)
            self.pos = i
            return
        ch = text[i]
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            self._lex_number(i)
            return
        if ch == "$":
            part, nxt = parse_varsub(text, i)
            if part is None or part[0] != VARSUB:
                self.error("lone $")
            self.token = ("varref", part[1])
            self.pos = nxt
            return
        if ch == "[":
            end = self._matching_bracket(i)
            self.token = ("cmdref", text[i + 1 : end])
            self.pos = end + 1
            return
        if ch == '"':
            self._lex_quoted(i)
            return
        if ch == "{":
            depth = 0
            j = i
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == "{":
                    depth += 1
                elif text[j] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if j >= n:
                self.error("missing close brace")
            self.token = ("str", text[i + 1 : j])
            self.pos = j + 1
            return
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPS:
            self.token = ("op", two)
            self.pos = i + 2
            return
        if ch in _OPERATOR_CHARS:
            self.token = ("op", ch)
            self.pos = i + 1
            return
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            self.token = ("name", text[i:j])
            self.pos = j
            return
        self.error("unexpected character %r" % ch)

    def _lex_number(self, i):
        text = self.text
        n = len(text)
        j = i
        is_float = False
        if text[j : j + 2].lower() == "0x":
            j += 2
            while j < n and text[j] in "0123456789abcdefABCDEF":
                j += 1
        else:
            while j < n and (text[j].isdigit() or text[j] == "."):
                if text[j] == ".":
                    is_float = True
                j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and text[j].isdigit():
                        j += 1
        raw = text[i:j]
        value = float(raw) if is_float else parse_number(raw)
        if value is None:
            self.error("bad number %r" % raw)
        self.token = ("num", value)
        self.pos = j

    def _lex_quoted(self, i):
        """A double-quoted operand: list of literal/varref/cmdref pieces."""
        text = self.text
        n = len(text)
        pieces = []
        buf = []
        j = i + 1
        while j < n and text[j] != '"':
            if text[j] == "\\":
                out, j = backslash_char(text, j)
                buf.append(out)
            elif text[j] == "$":
                part, nxt = parse_varsub(text, j)
                if part is None:
                    buf.append("$")
                    j = nxt
                else:
                    if buf:
                        pieces.append("".join(buf))
                        buf = []
                    pieces.append(("varref", part[1]))
                    j = nxt
            elif text[j] == "[":
                end = self._matching_bracket(j)
                if buf:
                    pieces.append("".join(buf))
                    buf = []
                pieces.append(("cmdref", text[j + 1 : end]))
                j = end + 1
            else:
                buf.append(text[j])
                j += 1
        if j >= n:
            self.error("unterminated string")
        if buf or not pieces:
            pieces.append("".join(buf))
        self.token = ("quoted", pieces)
        self.pos = j + 1

    def _matching_bracket(self, pos):
        depth = 0
        text = self.text
        j = pos
        n = len(text)
        while j < n:
            ch = text[j]
            if ch == "\\":
                j += 2
                continue
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
                if depth == 0:
                    return j
            j += 1
        self.error("missing close bracket")


class _Parser:
    """Recursive descent to an AST of tuples.

    Node shapes: ``("val", v)``, ``("varref", payload)``,
    ``("cmdref", script)``, ``("quoted", pieces)``, ``("unary", op, a)``,
    ``("binary", op, a, b)``, ``("andor", op, a, b)``,
    ``("ternary", c, a, b)``, ``("func", name, args)``.
    """

    _BINARY_LEVELS = [
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def __init__(self, lexer):
        self.lex = lexer

    def parse(self):
        node = self.parse_ternary()
        if self.lex.token != (None, None):
            self.lex.error("extra tokens at end")
        return node

    def parse_ternary(self):
        cond = self.parse_or()
        if self.lex.token == ("op", "?"):
            self.lex.advance()
            then_node = self.parse_ternary()
            if self.lex.token != ("op", ":"):
                self.lex.error("expected : in ?:")
            self.lex.advance()
            else_node = self.parse_ternary()
            return ("ternary", cond, then_node, else_node)
        return cond

    def parse_or(self):
        node = self.parse_and()
        while self.lex.token == ("op", "||"):
            self.lex.advance()
            node = ("andor", "||", node, self.parse_and())
        return node

    def parse_and(self):
        node = self.parse_binary(0)
        while self.lex.token == ("op", "&&"):
            self.lex.advance()
            node = ("andor", "&&", node, self.parse_binary(0))
        return node

    def parse_binary(self, level):
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        ops = self._BINARY_LEVELS[level]
        node = self.parse_binary(level + 1)
        while self.lex.token[0] == "op" and self.lex.token[1] in ops:
            op = self.lex.token[1]
            self.lex.advance()
            node = ("binary", op, node, self.parse_binary(level + 1))
        return node

    def parse_unary(self):
        kind, value = self.lex.token
        if kind == "op" and value in ("-", "+", "!", "~"):
            self.lex.advance()
            return ("unary", value, self.parse_unary())
        return self.parse_primary()

    def parse_primary(self):
        kind, value = self.lex.token
        if kind == "num":
            self.lex.advance()
            return ("val", value)
        if kind in ("str",):
            self.lex.advance()
            return ("val", value)
        if kind in ("varref", "cmdref", "quoted"):
            self.lex.advance()
            return (kind, value)
        if kind == "op" and value == "(":
            self.lex.advance()
            inner = self.parse_ternary()
            if self.lex.token != ("op", ")"):
                self.lex.error("expected )")
            self.lex.advance()
            return inner
        if kind == "name":
            name = value
            self.lex.advance()
            if self.lex.token == ("op", "("):
                self.lex.advance()
                args = []
                if self.lex.token != ("op", ")"):
                    args.append(self.parse_ternary())
                    while self.lex.token == ("op", ","):
                        self.lex.advance()
                        args.append(self.parse_ternary())
                if self.lex.token != ("op", ")"):
                    self.lex.error("expected )")
                self.lex.advance()
                return ("func", name, args)
            lowered = name.lower()
            if lowered in ("true", "yes", "on"):
                return ("val", 1)
            if lowered in ("false", "no", "off"):
                return ("val", 0)
            self.lex.error('unknown operand "%s"' % name)
        if kind is None:
            self.lex.error("premature end of expression")
        self.lex.error("unexpected token %r" % (value,))


_MATH_FUNCS = {
    "abs": (1, abs),
    "acos": (1, math.acos),
    "asin": (1, math.asin),
    "atan": (1, math.atan),
    "atan2": (2, math.atan2),
    "ceil": (1, lambda x: float(math.ceil(x))),
    "cos": (1, math.cos),
    "cosh": (1, math.cosh),
    "double": (1, float),
    "exp": (1, math.exp),
    "floor": (1, lambda x: float(math.floor(x))),
    "fmod": (2, math.fmod),
    "hypot": (2, math.hypot),
    "int": (1, int),
    "log": (1, math.log),
    "log10": (1, math.log10),
    "pow": (2, lambda x, y: float(x) ** float(y)
            if isinstance(x, float) or isinstance(y, float) or y < 0
            else int(x) ** int(y)),
    "round": (1, lambda x: int(math.floor(x + 0.5)) if x >= 0
              else -int(math.floor(-x + 0.5))),
    "sin": (1, math.sin),
    "sinh": (1, math.sinh),
    "sqrt": (1, math.sqrt),
    "tan": (1, math.tan),
    "tanh": (1, math.tanh),
}

# Functions whose arguments keep their integer-ness.
_INT_PRESERVING = frozenset(("abs", "int", "round", "double", "pow"))


class _Evaluator:
    def __init__(self, env):
        self.env = env

    def eval(self, node):
        kind = node[0]
        if kind == "val":
            return node[1]
        if kind == "varref":
            name, index_parts = node[1]
            return self.env.substitute_var(name, index_parts)
        if kind == "cmdref":
            return self.env.eval_script(node[1])
        if kind == "quoted":
            out = []
            for piece in node[1]:
                if isinstance(piece, str):
                    out.append(piece)
                elif piece[0] == "varref":
                    name, index_parts = piece[1]
                    out.append(self.env.substitute_var(name, index_parts))
                else:
                    out.append(self.env.eval_script(piece[1]))
            return "".join(out)
        if kind == "unary":
            return unary_op(node[1], self.eval(node[2]))
        if kind == "binary":
            return _binary(node[1], self.eval(node[2]), self.eval(node[3]))
        if kind == "andor":
            left = _truth(self.eval(node[2]))
            if node[1] == "&&":
                if not left:
                    return 0
                return 1 if _truth(self.eval(node[3])) else 0
            if left:
                return 1
            return 1 if _truth(self.eval(node[3])) else 0
        if kind == "ternary":
            if _truth(self.eval(node[1])):
                return self.eval(node[2])
            return self.eval(node[3])
        if kind == "func":
            return call_math_func(node[1], [self.eval(a) for a in node[2]])
        raise TclError("internal expr error: bad node %r" % (kind,))

    # Kept as methods for backward compatibility; the implementations
    # are module-level so the bytecode VM shares the exact semantics
    # (and error strings) with this tree walker.
    def _unary(self, op, operand):
        return unary_op(op, operand)

    def _call_func(self, name, args):
        return call_math_func(name, args)


def unary_op(op, operand):
    """Apply a unary expr operator exactly as the tree walker does."""
    if op == "-":
        return -_num(operand)
    if op == "+":
        return _num(operand)
    if op == "!":
        return 0 if _truth(operand) else 1
    number = _num(operand)
    if isinstance(number, float):
        raise TclError("can't use floating-point value as operand of \"~\"")
    return ~number


def call_math_func(name, args):
    """Invoke an expr math function with Tcl arity/domain errors."""
    spec = _MATH_FUNCS.get(name)
    if spec is None:
        raise TclError('unknown math function "%s"' % name)
    arity, func = spec
    if len(args) != arity:
        raise TclError(
            "too %s arguments for math function"
            % ("few" if len(args) < arity else "many")
        )
    numeric = [_num(a) for a in args]
    if name not in _INT_PRESERVING:
        numeric = [float(a) for a in numeric]
    try:
        return func(*numeric)
    except (ValueError, OverflowError):
        raise TclError("domain error: argument not in valid range")
    except ZeroDivisionError:
        raise TclError("divide by zero")


def _num(value):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    number = parse_number(value)
    if number is None:
        raise TclError("can't use non-numeric string as operand")
    return number


def _truth(value):
    if isinstance(value, (int, float)):
        return value != 0
    return is_true(value)


def _binary(op, left, right):
    if op in ("==", "!=", "<", ">", "<=", ">="):
        result = _compare(left, right)
        if op == "==":
            return 1 if result == 0 else 0
        if op == "!=":
            return 1 if result != 0 else 0
        if op == "<":
            return 1 if result < 0 else 0
        if op == ">":
            return 1 if result > 0 else 0
        if op == "<=":
            return 1 if result <= 0 else 0
        return 1 if result >= 0 else 0
    a, b = _num(left), _num(right)
    if op in ("|", "^", "&", "<<", ">>"):
        if isinstance(a, float) or isinstance(b, float):
            raise TclError(
                "can't use floating-point value as operand of integer operator"
            )
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "&":
            return a & b
        if op == "<<":
            return a << b
        return a >> b
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise TclError("divide by zero")
        if isinstance(a, int) and isinstance(b, int):
            # C-style truncation toward zero, as Tcl documents.
            quotient = abs(a) // abs(b)
            return quotient if (a >= 0) == (b >= 0) else -quotient
        return a / b
    if op == "%":
        if isinstance(a, float) or isinstance(b, float):
            raise TclError("can't use floating-point value as operand of \"%\"")
        if b == 0:
            raise TclError("divide by zero")
        remainder = abs(a) % abs(b)
        return -remainder if a < 0 else remainder
    raise TclError("unknown operator %s" % op)


def _compare(left, right):
    """Three-way compare, numeric when both operands look numeric."""
    ln = parse_number(left) if isinstance(left, str) else left
    rn = parse_number(right) if isinstance(right, str) else right
    if ln is not None and rn is not None:
        if ln < rn:
            return -1
        if ln > rn:
            return 1
        return 0
    ls = format_number(left) if isinstance(left, (int, float)) else left
    rs = format_number(right) if isinstance(right, (int, float)) else right
    if ls < rs:
        return -1
    if ls > rs:
        return 1
    return 0


# ----------------------------------------------------------------------
# AST cache
#
# Wafe re-evaluates the same expression strings on every event: loop
# conditions (`while {$i < $n}`), `if` tests in callbacks, translation
# actions.  The AST is immutable and environment-independent (variable
# and command references are deferred leaves resolved per evaluation),
# so a single module-level LRU keyed by the expression text is shared
# by every interpreter in the process.  Parse errors are *not* cached:
# they are rare, and caching exceptions would complicate eviction for
# no measurable win.

ast_cache = LRUCache(maxsize=1024)


def compile_expr(text, use_cache=True):
    """Parse an expression to its AST, memoised on the expression text."""
    if use_cache:
        ast = ast_cache.get(text)
        if ast is not None:
            return ast
    ast = _Parser(_Lexer(text)).parse()
    if use_cache:
        ast_cache.put(text, ast)
    return ast


def eval_compiled_expr(ast, env):
    """Walk an AST from :func:`compile_expr` against ``env``."""
    return _Evaluator(env).eval(ast)


def eval_expr(text, env, use_cache=True):
    """Evaluate an expression string; returns a Python int/float/str."""
    return _Evaluator(env).eval(compile_expr(text, use_cache))
