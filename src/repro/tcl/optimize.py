"""The verified bytecode optimizer: constant folding + dead stores.

Runs at the tail of ``compile_script_bytecode`` when the interpreter
was created with ``optimize=True`` (the default under the ``vm``
engine; ``Interp(optimize=False)`` is the A/B escape hatch).  The
contract is the same *semantic invisibility* the VM itself promises:
an optimized script must be byte-identical to the tree walker on
results, errorInfo, errorCode, ``info cmdcount``, and watchdog trip
points (tests/test_tcl_vm_differential.py runs the full differential
corpus with the optimizer on and off).  That constraint shapes every
transform:

* ``expr`` statements whose program folded to a single constant become
  :data:`~repro.tcl.bytecode.OP_CONSTEXPR` -- the result *string* is
  precomputed, but the op still performs ``expr``'s binding check and
  pays exactly one work unit, so ``rename expr`` and budget trips are
  unchanged.
* a ``[expr ...]`` word whose compiled block reduced to one
  ``OP_CONSTEXPR`` becomes :data:`~repro.tcl.bytecode.W_FOLDED`: the
  VM pays the block-entry unit and the expr unit (in that order, with
  the same errorInfo seeding on a trip) and returns the precomputed
  string without entering the dispatch loop.
* loop/branch conditions whose program is a single constant get their
  truth value precomputed into the condition tuple's fifth slot.
  Folding only happens when the truth conversion cannot raise; a
  condition like ``while {"abc"}`` keeps its per-iteration error.
* adjacent constant ``set``s to the same scalar: every store but the
  last is provably dead, so the earlier ops become
  :data:`~repro.tcl.bytecode.OP_SETDEAD`, which pays ``set``'s work
  unit but skips the memory write.  *Adjacent* is a hard requirement,
  not a simplification: with any other statement in between -- even
  another constant ``set`` -- a write trace on that statement's
  variable could run arbitrary code that reads the "dead" value.
  Deadness within a chain is established with the same
  :class:`repro.lint.dataflow.Liveness` lattice the lint rules use
  (the chain is one straight-line block; the boundary keeps the final
  value live).

The elision is also self-defending at run time: ``OP_SETDEAD`` only
skips the store on the inline-cache fast path (plain scalar, no
traces); any slow-path condition performs the real assignment through
``Interp.call``, so traces added after compilation fire with the exact
values the unoptimized program would produce.
"""

from repro.lint.dataflow import Liveness, solve, stmt_states
from repro.tcl import bytecode as _bc
from repro.tcl.errors import TclError
from repro.tcl.expr import format_number, is_true

__all__ = ["optimize_code"]


class _ChainBlock:
    """One straight-line pseudo-block over a run of adjacent stores,
    shaped like a :class:`repro.lint.cfg.Block` for the solver."""

    __slots__ = ("stmts", "succs", "preds")

    def __init__(self, stmts):
        self.stmts = stmts
        self.succs = []
        self.preds = []


class _ChainGraph:
    __slots__ = ("blocks", "entry", "exit")

    def __init__(self, block):
        self.blocks = [block]
        self.entry = block
        self.exit = block


def _const_result(value):
    """(result_string, int_or_None) for a folded expr value, or None
    when rendering could raise (keep the op; the error stays lazy)."""
    if type(value) is int:
        return str(value), value
    try:
        return format_number(value), None
    except Exception:
        return None


def _fold_constexpr(op):
    """OP_EXPR whose program is a single constant -> OP_CONSTEXPR."""
    prog = op[2]
    if len(prog) != 1 or prog[0][0] != _bc.E_CONST:
        return None
    rendered = _const_result(prog[0][1])
    if rendered is None:
        return None
    result, num = rendered
    return (_bc.OP_CONSTEXPR, op[1], result, num, op[3], op[4],
            op[5], op[6])


def _fold_cond(cond):
    """Precompute the truth slot of a single-constant condition.

    Mirrors the tail of ``vm._cond`` exactly; any conversion that
    would raise (``while {"abc"}``) leaves the slot None so the error
    is produced per evaluation, as before.
    """
    prog = cond[0]
    if (prog is None or cond[4] is not None or len(prog) != 1
            or prog[0][0] != _bc.E_CONST):
        return cond
    value = prog[0][1]
    try:
        if type(value) is int:
            truth = value != 0
        elif isinstance(value, str):
            truth = is_true(value)
        else:
            truth = value != 0
    except TclError:
        return cond
    return (cond[0], cond[1], cond[2], cond[3], truth)


def _fold_word(word):
    """W_CODE wrapping a lone OP_CONSTEXPR -> W_FOLDED."""
    if word[0] != _bc.W_CODE:
        return None
    inner = word[1].ops
    if len(inner) == 1 and inner[0][0] == _bc.OP_CONSTEXPR:
        return (_bc.W_FOLDED, word[1])
    return None


def _dead_const_set(op):
    """True for an OP_SET of a constant into a plain scalar -- the
    only store shape whose elision cannot change evaluation order."""
    return op[0] == _bc.OP_SET and op[3][0] == _bc.W_CONST


def _elide_dead_stores(ops):
    """Rewrite dead members of adjacent same-name constant-set chains.

    Returns the number of stores elided.  Each maximal chain is solved
    as a one-block liveness problem: a store whose name is not live
    immediately after it (a later store in the chain definitely
    overwrites it) carries a dead value.
    """
    elided = 0
    i = 0
    n = len(ops)
    while i < n:
        op = ops[i]
        if not _dead_const_set(op):
            i += 1
            continue
        name = op[2]
        j = i + 1
        while j < n and _dead_const_set(ops[j]) and ops[j][2] == name:
            j += 1
        if j - i >= 2:
            chain = ops[i:j]
            block = _ChainBlock(chain)
            problem = Liveness(
                uses=lambda stmt: ((), False),
                defs=lambda stmt: (stmt[2],),
                boundary_all=True)
            states = solve(_ChainGraph(block), problem)
            # Backward problem: states arrive in reverse program
            # order, so offset 0 is the chain's final store.
            for offset, (stmt, after) in enumerate(
                    stmt_states(problem, block, states[block])):
                if not Liveness.is_live(after, stmt[2]):
                    k = j - 1 - offset
                    ops[k] = (_bc.OP_SETDEAD,) + ops[k][1:]
                    elided += 1
        i = j
    return elided


def optimize_code(code, interp):
    """Optimize one compiled :class:`~repro.tcl.bytecode.Code` level.

    Nested blocks are optimized when they are compiled (the emitter
    recurses through ``compile_script_bytecode``), so this pass only
    rewrites the given level's ops.  Fold/elide totals accumulate in
    ``interp._vm_stats`` and surface through ``info bytecode``.
    """
    ops = list(code.ops)
    folded = 0
    changed = False
    for i, op in enumerate(ops):
        kind = op[0]
        if kind == _bc.OP_EXPR:
            new = _fold_constexpr(op)
            if new is not None:
                ops[i] = new
                folded += 1
        elif kind == _bc.OP_SET:
            new = _fold_word(op[3])
            if new is not None:
                ops[i] = op[:3] + (new,) + op[4:]
                folded += 1
        elif kind == _bc.OP_INCR:
            if op[4] is not None:
                new = _fold_word(op[4])
                if new is not None:
                    ops[i] = op[:4] + (new,) + op[5:]
                    folded += 1
        elif kind == _bc.OP_FOREACH:
            if op[3] is None:
                new = _fold_word(op[4])
                if new is not None:
                    ops[i] = op[:4] + (new,) + op[5:]
                    folded += 1
        elif kind == _bc.OP_IF:
            clauses = tuple((_fold_cond(cond), body)
                            for cond, body in op[2])
            if any(new is not old
                   for (new, __), (old, __2) in zip(clauses, op[2])):
                ops[i] = op[:2] + (clauses,) + op[3:]
                changed = True
        elif kind == _bc.OP_WHILE:
            cond = _fold_cond(op[2])
            if cond is not op[2]:
                ops[i] = op[:2] + (cond,) + op[3:]
                changed = True
        elif kind == _bc.OP_FOR:
            cond = _fold_cond(op[3])
            if cond is not op[3]:
                ops[i] = op[:3] + (cond,) + op[4:]
                changed = True
    elided = _elide_dead_stores(ops)
    stats = interp._vm_stats
    stats["folded"] += folded
    stats["elided"] += elided
    if not (folded or elided or changed):
        return code
    return _bc.Code(tuple(ops), code.source, code.inline_ops,
                    code.generic_ops)
