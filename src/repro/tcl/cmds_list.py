"""Tcl list commands: list, lindex, lrange, lsort, concat, split, join..."""

from repro.tcl.errors import TclError
from repro.tcl.expr import parse_number
from repro.tcl.lists import list_to_string, quote_element, string_to_list


def _wrong_args(usage):
    raise TclError('wrong # args: should be "%s"' % usage)


def _index(text, length, what="index"):
    if text == "end":
        return length - 1
    try:
        return int(text)
    except ValueError:
        raise TclError('bad %s "%s": must be integer or "end"' % (what, text))


def cmd_list(interp, argv):
    return list_to_string(argv[1:])


def cmd_llength(interp, argv):
    if len(argv) != 2:
        _wrong_args("llength list")
    return str(len(string_to_list(argv[1])))


def cmd_lindex(interp, argv):
    if len(argv) != 3:
        _wrong_args("lindex list index")
    items = string_to_list(argv[1])
    index = _index(argv[2], len(items))
    if 0 <= index < len(items):
        return items[index]
    return ""


def cmd_lrange(interp, argv):
    if len(argv) != 4:
        _wrong_args("lrange list first last")
    items = string_to_list(argv[1])
    first = max(0, _index(argv[2], len(items)))
    last = min(len(items) - 1, _index(argv[3], len(items)))
    if first > last:
        return ""
    return list_to_string(items[first : last + 1])


def cmd_lappend(interp, argv):
    if len(argv) < 2:
        _wrong_args("lappend varName ?value value ...?")
    name = argv[1]
    current = interp.get_var(name) if interp.var_exists(name) else ""
    pieces = [current] if current else []
    pieces.extend(quote_element(v) for v in argv[2:])
    return interp.set_var(name, " ".join(pieces))


def cmd_linsert(interp, argv):
    if len(argv) < 4:
        _wrong_args("linsert list index element ?element ...?")
    items = string_to_list(argv[1])
    index = _index(argv[2], len(items) + 1)
    index = max(0, min(index, len(items)))
    return list_to_string(items[:index] + list(argv[3:]) + items[index:])


def cmd_lreplace(interp, argv):
    if len(argv) < 4:
        _wrong_args("lreplace list first last ?element element ...?")
    items = string_to_list(argv[1])
    first = _index(argv[2], len(items))
    last = _index(argv[3], len(items))
    if first < 0:
        first = 0
    if first >= len(items) and items:
        raise TclError('list doesn\'t contain element %s' % argv[2])
    if last < first - 1:
        last = first - 1
    return list_to_string(items[:first] + list(argv[4:]) + items[last + 1 :])


def cmd_lsearch(interp, argv):
    from repro.tcl.cmds_string import glob_match

    args = argv[1:]
    mode = "glob"
    if args and args[0] in ("-exact", "-glob", "-regexp"):
        mode = args[0][1:]
        args = args[1:]
    if len(args) != 2:
        _wrong_args("lsearch ?mode? list pattern")
    items, pattern = string_to_list(args[0]), args[1]
    for i, item in enumerate(items):
        if mode == "exact":
            if item == pattern:
                return str(i)
        elif mode == "glob":
            if glob_match(pattern, item):
                return str(i)
        else:
            import re

            if re.search(pattern, item):
                return str(i)
    return "-1"


def cmd_lsort(interp, argv):
    args = argv[1:]
    mode = "ascii"
    reverse = False
    command = None
    while args and args[0].startswith("-"):
        flag = args[0]
        if flag == "-ascii":
            mode = "ascii"
        elif flag == "-integer":
            mode = "integer"
        elif flag == "-real":
            mode = "real"
        elif flag == "-increasing":
            reverse = False
        elif flag == "-decreasing":
            reverse = True
        elif flag == "-command":
            if len(args) < 2:
                raise TclError('"-command" option must be followed by comparison command')
            command = args[1]
            args = args[1:]
        else:
            raise TclError('bad option "%s"' % flag)
        args = args[1:]
    if len(args) != 1:
        _wrong_args("lsort ?options? list")
    items = string_to_list(args[0])
    if command is not None:
        import functools

        def compare(a, b):
            result = interp.eval(
                "%s %s %s" % (command, quote_element(a), quote_element(b))
            )
            try:
                return int(result)
            except ValueError:
                raise TclError(
                    "comparison command returned non-numeric result: %s" % result
                )

        items.sort(key=functools.cmp_to_key(compare), reverse=reverse)
    elif mode == "integer":
        try:
            items.sort(key=int, reverse=reverse)
        except ValueError as err:
            raise TclError("expected integer but got non-integer element: %s" % err)
    elif mode == "real":
        try:
            items.sort(key=float, reverse=reverse)
        except ValueError as err:
            raise TclError("expected real but got non-real element: %s" % err)
    else:
        items.sort(reverse=reverse)
    return list_to_string(items)


def cmd_concat(interp, argv):
    pieces = [a.strip() for a in argv[1:] if a.strip() != ""]
    return " ".join(pieces)


def cmd_join(interp, argv):
    if len(argv) not in (2, 3):
        _wrong_args("join list ?joinString?")
    sep = argv[2] if len(argv) == 3 else " "
    return sep.join(string_to_list(argv[1]))


def cmd_split(interp, argv):
    if len(argv) not in (2, 3):
        _wrong_args("split string ?splitChars?")
    text = argv[1]
    chars = argv[2] if len(argv) == 3 else " \t\n\r"
    if chars == "":
        return list_to_string(list(text))
    pieces = []
    current = []
    for ch in text:
        if ch in chars:
            pieces.append("".join(current))
            current = []
        else:
            current.append(ch)
    pieces.append("".join(current))
    return list_to_string(pieces)


def register(interp):
    interp.register("list", cmd_list)
    interp.register("llength", cmd_llength)
    interp.register("lindex", cmd_lindex)
    interp.register("lrange", cmd_lrange)
    interp.register("lappend", cmd_lappend)
    interp.register("linsert", cmd_linsert)
    interp.register("lreplace", cmd_lreplace)
    interp.register("lsearch", cmd_lsearch)
    interp.register("lsort", cmd_lsort)
    interp.register("concat", cmd_concat)
    interp.register("join", cmd_join)
    interp.register("split", cmd_split)
