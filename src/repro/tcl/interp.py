"""The Tcl interpreter: frames, variables, substitution, dispatch.

The design mirrors the C implementation's structure: an interpreter owns
a command table and a stack of call frames; every command is a callable
``(interp, argv) -> str`` where ``argv[0]`` is the command name, exactly
like ``Tcl_CmdProc``.  Variables live in frames and may be scalars,
associative arrays, or upvar links into another frame.
"""

import sys as _sys
import time as _time

from repro.tcl import compile as _compile
from repro.tcl import parser as _parser
from repro.tcl import vm as _vm
from repro.tcl.cache import LRUCache
from repro.tcl.errors import (
    ERRORINFO_FRAME_LIMIT,
    TclBreak,
    TclContinue,
    TclError,
    TclLimitError,
    TclReturn,
    log_panic,
)
from repro.tcl.expr import (
    ast_cache as _expr_ast_cache,
    compile_expr,
    eval_compiled_expr,
    eval_expr,
    format_number,
    is_true,
)
from repro.tcl.lists import quote_element

_SCALAR = 0
_ARRAY = 1
_LINK = 2

#: Tcl's ``interp recursionlimit`` default: the deepest the Tcl-level
#: evaluation stack may grow before a clean "too many nested
#: evaluations" error replaces what would otherwise be a Python
#: RecursionError crash.
DEFAULT_RECURSION_LIMIT = 1000

#: Watchdog check granularity: the limit slow path runs every this
#: many work units (dispatched commands + nested eval entries).  Sized
#: so the slow path (a monotonic-clock read plus ceiling compares)
#: stays under the <5% armed-overhead budget even at bytecode-VM
#: dispatch rates; budgets are enforced with up to this much slack.
_CHECK_INTERVAL = 256

#: ``_next_check`` sentinel while the watchdog is disarmed: a command
#: count no session will ever reach, so the hot-loop comparison stays
#: false without a second attribute test.
_NO_CHECK = 1 << 62

#: Each Tcl nesting level costs ~7 Python frames (measured; eval ->
#: execute -> call -> command -> ...), so the Python recursion limit
#: must leave headroom above the Tcl limit for the TclError to be the
#: one that fires.  Capped: past this the RecursionError backstop in
#: ``eval`` still yields the same clean Tcl error.
_PY_FRAMES_PER_NESTING = 8
_PY_RECURSION_CAP = 200000


def _ensure_python_stack(recursion_limit):
    needed = min(recursion_limit * _PY_FRAMES_PER_NESTING + 200,
                 _PY_RECURSION_CAP)
    if _sys.getrecursionlimit() < needed:
        _sys.setrecursionlimit(needed)


class _Var:
    __slots__ = ("kind", "value", "traces", "num", "num_str")

    def __init__(self, kind, value):
        self.kind = kind
        self.value = value  # str | dict | (frame, name)
        self.traces = None  # list of _Trace, lazily created
        # Numeric shadow for the bytecode VM's integer fast paths.
        # Invariant: the shadow is meaningful only while ``num_str is
        # value`` (object identity) -- any writer that replaces
        # ``value`` invalidates it implicitly, so only the VM's trusted
        # integer writers ever need to maintain these two fields.
        self.num = None
        self.num_str = None


class _Trace:
    """One ``trace variable`` registration."""

    __slots__ = ("ops", "command", "active")

    def __init__(self, ops, command):
        self.ops = ops
        self.command = command
        self.active = False  # reentrancy guard (Tcl disables a firing trace)


class CallFrame:
    """One level of the Tcl procedure call stack."""

    __slots__ = ("vars", "level", "proc_name", "argv")

    def __init__(self, level, proc_name=None, argv=None):
        self.vars = {}
        self.level = level
        self.proc_name = proc_name
        self.argv = argv or []


class Proc:
    """A Tcl procedure: formal arguments (with defaults) and a body."""

    __slots__ = ("name", "formals", "body")

    def __init__(self, name, formals, body):
        self.name = name
        self.formals = formals  # list of (name, default_or_None)
        self.body = body


def split_varname(name):
    """Split ``a(b)`` into ``("a", "b")``; plain names give index None."""
    if name.endswith(")"):
        paren = name.find("(")
        if paren >= 0:
            return name[:paren], name[paren + 1 : -1]
    return name, None


class _ExprEnv:
    """Adapter giving the expr evaluator access to interpreter state."""

    __slots__ = ("interp",)

    def __init__(self, interp):
        self.interp = interp

    def substitute_var(self, name, index_parts):
        index = None
        if index_parts is not None:
            index = self.interp._substitute_parts(index_parts)
        return self.interp.get_var(name, index)

    def eval_script(self, script):
        return self.interp.eval(script)


class Interp:
    """A Tcl interpreter with all built-in commands registered.

    ``Interp()`` gives plain Tcl; Wafe layers its widget commands on top
    by calling :meth:`register`.
    """

    def __init__(self, register_builtins=True, compile=True, optimize=True):
        self.commands = {}
        self.procs = {}
        self.frames = [CallFrame(0)]
        self.parse_cache = _parser.ParseCache()
        # Three engines share one front door:
        #   compile=True    -> "vm": bytecode with inline caches
        #   compile="plans" -> "plans": PR-1 substitution plans
        #   compile=False   -> "tree": the uncompiled executable spec
        # ``compile=False`` is the A/B escape hatch: evaluation falls
        # back to per-eval word substitution and uncached expr parsing,
        # which is the reference semantics both compiled engines must
        # match byte-for-byte.
        if compile == "plans":
            self.engine = "plans"
        elif compile:
            self.engine = "vm"
        else:
            self.engine = "tree"
        self.compile_enabled = self.engine != "tree"
        # The bytecode optimizer (repro.tcl.optimize) only exists on
        # the vm engine; ``optimize=False`` is the A/B escape hatch
        # for isolating a suspected optimizer bug without giving up
        # inline caches.
        self.optimize = bool(optimize) and self.engine == "vm"
        self.compile_cache = LRUCache(maxsize=512)
        self.bytecode_cache = LRUCache(maxsize=512)
        # Inline-cache invalidation counters (see repro.tcl.vm): any
        # command-table mutation bumps ``cmds_generation``; unset/upvar
        # bump ``var_epoch``.  Cheap monotonic integers, bumped even
        # when the VM is not in use.
        self.cmds_generation = 0
        self.var_epoch = 0
        self._vm_stats = {
            "scripts": 0, "inline_ops": 0, "generic_ops": 0, "deopts": 0,
            "folded": 0, "elided": 0,
        }
        # Integer handoff between an inlined ``expr`` and a consuming
        # ``set`` (see repro.tcl.vm): valid only while ``_vm_num_str``
        # is, by object identity, the string being stored.
        self._vm_num = None
        self._vm_num_str = None
        self._expr_env = _ExprEnv(self)
        self.cmd_count = 0
        self.recursion_limit = DEFAULT_RECURSION_LIMIT
        _ensure_python_stack(self.recursion_limit)
        self._nesting = 0
        self._peak_nesting = 0
        # The cooperative watchdog (Tcl's ``interp limit``): optional
        # wall-time and command-count budgets per *top-level* eval
        # (one backend line, one callback).  Armed when the outermost
        # eval starts.  The hot-loop cost is one integer comparison,
        # armed or not: ``call`` tests ``cmd_count >= _next_check``,
        # where ``_next_check`` is a far-away sentinel while disarmed
        # and the next ``_CHECK_INTERVAL`` checkpoint while armed.  Budgets
        # therefore have up to ``_CHECK_INTERVAL`` work units of
        # slack; that is the price of <5% overhead.
        self.limit_time_ms = 0      # 0: no wall-time budget
        self.limit_commands = 0     # 0: no command-count budget
        self._limits_armed = False
        self._limit_deadline = None
        self._limit_cmd_ceiling = None
        self._limit_fresh = False
        self._next_check = _NO_CHECK
        self._limit_trips = {"commands": 0, "time": 0, "recursion": 0}
        # Embedder hook fired on every budget trip with the trip kind
        # ("commands"/"time"/"recursion"); the server's quota ledger
        # hangs off this.  Hook failures are contained -- a broken
        # observer must not mask the limit error itself.
        self.on_limit_trip = None
        # The Python-exception firewall counter (``info evalstats``).
        self.firewall_catches = 0
        # Safe mode (Safe Tcl): hidden commands are parked here, out of
        # reach of scripts but restorable via :meth:`expose_command`.
        self.hidden_commands = {}
        # Output hook: ``puts``/``echo`` write through here so embedders
        # (the Wafe frontend) can redirect output to the backend pipe.
        self.write_output = None
        # Extra ``info`` subcommands registered by embedders (Wafe adds
        # ``info xrmstats`` next to the built-in ``info cachestats``).
        self.info_extensions = {"bytecode": _vm.cmd_info_bytecode}
        if register_builtins:
            from repro.tcl import cmds_core, cmds_info, cmds_list, cmds_string

            cmds_core.register(self)
            cmds_list.register(self)
            cmds_string.register(self)
            cmds_info.register(self)

    # ------------------------------------------------------------------
    # Command table

    def register(self, name, func):
        """Register a command: ``func(interp, argv) -> str``."""
        self.cmds_generation += 1
        self.commands[name] = func

    def unregister(self, name):
        self.cmds_generation += 1
        self.commands.pop(name, None)
        self.procs.pop(name, None)

    def rename(self, old, new):
        self.cmds_generation += 1
        if old not in self.commands:
            raise TclError('can\'t rename "%s": command doesn\'t exist' % old)
        if new == "":
            self.commands.pop(old)
            self.procs.pop(old, None)
            return
        if new in self.commands:
            raise TclError('can\'t rename to "%s": command already exists' % new)
        self.commands[new] = self.commands.pop(old)
        if old in self.procs:
            self.procs[new] = self.procs.pop(old)

    def hide_command(self, name):
        """Safe-Tcl ``interp hide``: park a command out of script reach.

        The command vanishes from the dispatch table (invoking it gives
        ``invalid command name``, and ``rename``/``info commands`` no
        longer see it) but its implementation is kept so a trusted
        caller can :meth:`expose_command` it again.
        """
        self.cmds_generation += 1
        func = self.commands.pop(name, None)
        if func is None:
            raise TclError(
                'unknown command "%s": cannot hide' % name)
        self.hidden_commands[name] = func

    def expose_command(self, name):
        """Safe-Tcl ``interp expose``: restore a hidden command."""
        func = self.hidden_commands.get(name)
        if func is None:
            raise TclError('unknown hidden command "%s"' % name)
        if name in self.commands:
            raise TclError(
                'exposed command "%s" would hide an existing command'
                % name)
        del self.hidden_commands[name]
        self.cmds_generation += 1
        self.commands[name] = func

    # ------------------------------------------------------------------
    # Frames and variables

    @property
    def current_frame(self):
        return self.frames[-1]

    @property
    def global_frame(self):
        return self.frames[0]

    def _resolve(self, frame, name):
        """Follow upvar links; returns (frame, name)."""
        seen = 0
        while True:
            var = frame.vars.get(name)
            if var is not None and var.kind == _LINK:
                frame, name = var.value
                seen += 1
                if seen > 100:
                    raise TclError("too many nested upvar links")
            else:
                return frame, name

    def set_var(self, name, value, index=None, frame=None):
        if index is None:
            name, index = split_varname(name)
        if frame is None:
            frame = self.current_frame
        frame, name = self._resolve(frame, name)
        if index is None:
            # upvar links may point at an array element ("a(k)").
            name, index = split_varname(name)
        var = frame.vars.get(name)
        if index is None:
            if var is not None and var.kind == _ARRAY:
                raise TclError('can\'t set "%s": variable is array' % name)
            if var is not None and var.kind == _SCALAR:
                var.value = value  # keep traces attached
            else:
                var = _Var(_SCALAR, value)
                frame.vars[name] = var
        else:
            if var is None or var.kind != _ARRAY:
                if var is not None and var.kind == _SCALAR:
                    if var.value is None:
                        # Trace-only placeholder: become an array.
                        var.kind = _ARRAY
                        var.value = {}
                    else:
                        raise TclError(
                            'can\'t set "%s(%s)": variable isn\'t array'
                            % (name, index)
                        )
                else:
                    var = _Var(_ARRAY, {})
                    frame.vars[name] = var
            var.value[index] = value
        self._fire_traces(var, name, index, "w")
        return value

    def get_var(self, name, index=None, frame=None):
        if index is None:
            name, index = split_varname(name)
        if frame is None:
            frame = self.current_frame
        frame, name = self._resolve(frame, name)
        if index is None:
            name, index = split_varname(name)
        var = frame.vars.get(name)
        if var is None:
            raise TclError('can\'t read "%s": no such variable' % name)
        self._fire_traces(var, name, index, "r")
        if index is None:
            if var.kind == _ARRAY:
                raise TclError('can\'t read "%s": variable is array' % name)
            if var.value is None:
                # A trace-only placeholder: the variable has no value yet.
                raise TclError('can\'t read "%s": no such variable' % name)
            return var.value
        if var.kind != _ARRAY:
            raise TclError('can\'t read "%s(%s)": variable isn\'t array' % (name, index))
        if index not in var.value:
            raise TclError(
                'can\'t read "%s(%s)": no such element in array' % (name, index)
            )
        return var.value[index]

    def var_exists(self, name, index=None, frame=None):
        if index is None:
            name, index = split_varname(name)
        if frame is None:
            frame = self.current_frame
        frame, name = self._resolve(frame, name)
        if index is None:
            name, index = split_varname(name)
        var = frame.vars.get(name)
        if var is None or var.kind == _LINK:
            return False
        if var.kind == _SCALAR and var.value is None:
            return False  # trace-only placeholder
        if index is None:
            return True
        return var.kind == _ARRAY and index in var.value

    def unset_var(self, name, index=None, frame=None):
        if index is None:
            name, index = split_varname(name)
        if frame is None:
            frame = self.current_frame
        owner = frame
        frame, name = self._resolve(frame, name)
        if index is None:
            name, index = split_varname(name)
        var = frame.vars.get(name)
        if var is None:
            raise TclError('can\'t unset "%s": no such variable' % name)
        self._fire_traces(var, name, index, "u")
        if index is None:
            del frame.vars[name]
            # The var object is now orphaned: invalidate every VM cache
            # cell (a later ``set`` creates a *new* object, which a
            # stale cell would miss).  Element deletion keeps the var
            # object, so it does not need the epoch bump.
            self.var_epoch += 1
        else:
            if var.kind != _ARRAY or index not in var.value:
                raise TclError(
                    'can\'t unset "%s(%s)": no such element in array' % (name, index)
                )
            del var.value[index]
        del owner  # links stay; reading through them re-raises no-such-var

    def _fire_traces(self, var, name, index, op):
        """Run ``trace variable`` commands registered for this op."""
        if var is None or not var.traces:
            return
        for trace in list(var.traces):
            if op not in trace.ops or trace.active:
                continue
            trace.active = True
            try:
                self.eval("%s %s %s %s" % (
                    trace.command, quote_element(name),
                    quote_element(index if index is not None else ""), op))
            finally:
                trace.active = False

    def add_trace(self, name, ops, command, frame=None):
        """``trace variable``: attach a trace (creates the variable slot
        if needed, like Tcl does for write/unset traces)."""
        base, index = split_varname(name)
        if frame is None:
            frame = self.current_frame
        frame, base = self._resolve(frame, base)
        var = frame.vars.get(base)
        if var is None:
            var = _Var(_ARRAY if index is not None else _SCALAR,
                       {} if index is not None else None)
            frame.vars[base] = var
        if var.traces is None:
            var.traces = []
        var.traces.append(_Trace(ops, command))

    def remove_trace(self, name, ops, command, frame=None):
        base, __ = split_varname(name)
        if frame is None:
            frame = self.current_frame
        frame, base = self._resolve(frame, base)
        var = frame.vars.get(base)
        if var is None or not var.traces:
            return
        for trace in list(var.traces):
            if trace.ops == ops and trace.command == command:
                var.traces.remove(trace)
                return

    def trace_info(self, name, frame=None):
        base, __ = split_varname(name)
        if frame is None:
            frame = self.current_frame
        frame, base = self._resolve(frame, base)
        var = frame.vars.get(base)
        if var is None or not var.traces:
            return []
        return [(t.ops, t.command) for t in var.traces]

    def link_var(self, local_name, target_frame, target_name):
        """Implement upvar/global: alias local_name to another frame's var."""
        # A link can shadow or redirect any cached (frame, name)
        # resolution, so it invalidates VM variable cells like unset.
        self.var_epoch += 1
        self.current_frame.vars[local_name] = _Var(_LINK, (target_frame, target_name))

    def array_of(self, name, frame=None, create=False):
        """Return the dict behind array ``name`` (or None)."""
        if frame is None:
            frame = self.current_frame
        frame, name = self._resolve(frame, name)
        var = frame.vars.get(name)
        if var is None:
            if not create:
                return None
            var = _Var(_ARRAY, {})
            frame.vars[name] = var
        if var.kind != _ARRAY:
            return None
        return var.value

    def frame_at_level(self, spec):
        """Resolve a level spec: ``#0`` absolute, digits relative."""
        if spec.startswith("#"):
            try:
                level = int(spec[1:])
            except ValueError:
                raise TclError('bad level "%s"' % spec)
            if not 0 <= level < len(self.frames):
                raise TclError('bad level "%s"' % spec)
            return self.frames[level]
        try:
            up = int(spec)
        except ValueError:
            raise TclError('bad level "%s"' % spec)
        target = len(self.frames) - 1 - up
        if target < 0:
            raise TclError('bad level "%s"' % spec)
        return self.frames[target]

    # ------------------------------------------------------------------
    # Substitution and evaluation

    def _substitute_parts(self, parts):
        if len(parts) == 1:
            kind, payload = parts[0]
            if kind == _parser.LITERAL:
                return payload
            if kind == _parser.VARSUB:
                name, index_parts = payload
                index = (
                    self._substitute_parts(index_parts)
                    if index_parts is not None
                    else None
                )
                return self.get_var(name, index)
            return self.eval(payload)
        out = []
        for kind, payload in parts:
            if kind == _parser.LITERAL:
                out.append(payload)
            elif kind == _parser.VARSUB:
                name, index_parts = payload
                index = (
                    self._substitute_parts(index_parts)
                    if index_parts is not None
                    else None
                )
                out.append(self.get_var(name, index))
            else:
                out.append(self.eval(payload))
        return "".join(out)

    def substitute_word(self, word):
        return self._substitute_parts(word.parts)

    def compile_script(self, script):
        """The memoised ``script -> CompiledScript`` used by ``eval``.

        Loop commands hoist this out of their iteration (the returned
        object is immutable and resolves command names at call time, so
        holding on to it cannot observe stale ``proc``/``rename``
        state).  Only meaningful with compilation enabled.

        Under the ``vm`` engine this returns a bytecode ``Code`` object
        (whose inline ops self-check their command bindings per
        execution); under ``plans`` it returns the PR-1
        ``CompiledScript``.  Both expose ``execute(interp)``.
        """
        if self.engine == "vm":
            compiled = self.bytecode_cache.get(script)
            if compiled is None:
                compiled = self.bytecode_cache.put(
                    script,
                    _compile.compile_script_bytecode(
                        self.parse_cache.get(script), script, self),
                )
            return compiled
        compiled = self.compile_cache.get(script)
        if compiled is None:
            compiled = self.compile_cache.put(
                script,
                _compile.compile_script(self.parse_cache.get(script),
                                        script),
            )
        return compiled

    # -- eval limits ----------------------------------------------------

    def set_recursion_limit(self, limit):
        """``interp recursionlimit``: the Tcl nesting ceiling."""
        if limit < 1:
            raise TclError("recursion limit must be at least 1")
        self.recursion_limit = limit
        _ensure_python_stack(limit)

    def set_eval_limits(self, time_ms=None, commands=None):
        """Configure the watchdog budgets (0 disables either).

        Budgets apply per top-level evaluation and take effect the
        next time one starts; they are enforced with up to
        ``_CHECK_INTERVAL`` work units of slack.
        """
        if time_ms is not None:
            if time_ms < 0:
                raise TclError("time limit must be non-negative")
            self.limit_time_ms = time_ms
        if commands is not None:
            if commands < 0:
                raise TclError("command limit must be non-negative")
            self.limit_commands = commands

    def _arm_limits(self):
        # Arming runs per top-level eval, so it must stay cheap (at
        # bytecode-VM dispatch rates it is a measurable fraction of a
        # short callback): three attribute writes.  The command ceiling
        # and the wall-clock deadline are derived lazily on the first
        # slow-path check -- the arm-time count is recoverable there as
        # ``_next_check - _CHECK_INTERVAL``, and a short script that
        # never reaches a check never pays for either.
        self._next_check = self.cmd_count + _CHECK_INTERVAL
        self._limit_fresh = True
        self._limits_armed = True

    def _disarm_limits(self):
        self._limits_armed = False
        self._next_check = _NO_CHECK

    def _check_limits(self, count):
        """The slow path of the watchdog (reached every
        ``_CHECK_INTERVAL``-th work unit).

        Work units are dispatched commands plus nested eval entries --
        the eval entries matter because a hostile ``while 1 {}``
        re-enters eval for its (empty) body every iteration without
        dispatching a single command.  Both are counted whether the
        watchdog is armed or not, so arming changes nothing on the hot
        path and ``info cmdcount`` is limit-independent.
        """
        if self._limit_fresh:
            # First check since arming: materialise the budgets from
            # the arm-time count (deferred out of the arming hot path).
            self._limit_fresh = False
            base = self._next_check - _CHECK_INTERVAL
            self._limit_cmd_ceiling = (
                base + self.limit_commands
                if self.limit_commands else None)
            self._limit_deadline = -1.0 if self.limit_time_ms else None
        self._next_check = count + _CHECK_INTERVAL
        ceiling = self._limit_cmd_ceiling
        if ceiling is not None and count >= ceiling:
            self._disarm_limits()
            self._note_limit_trip("commands")
            raise TclLimitError(
                "command count limit exceeded (budget %d commands)"
                % self.limit_commands, "commands")
        deadline = self._limit_deadline
        if deadline is not None:
            if deadline < 0:
                # First check since arming: start the clock now.
                self._limit_deadline = (
                    _time.monotonic() + self.limit_time_ms / 1000.0)
            elif _time.monotonic() >= deadline:
                self._disarm_limits()
                self._note_limit_trip("time")
                raise TclLimitError(
                    "time limit exceeded (budget %d ms)"
                    % self.limit_time_ms, "time")

    def _note_limit_trip(self, kind):
        self._limit_trips[kind] += 1
        hook = self.on_limit_trip
        if hook is not None:
            try:
                hook(kind)
            except Exception:  # noqa: BLE001 -- observer must not mask
                pass

    def _recursion_error(self):
        self._note_limit_trip("recursion")
        return TclError("too many nested evaluations (infinite loop?)")

    def _start_errorinfo(self, err, script):
        """Errors with no command frame yet (substitution or parse
        failures) start their traceback from the script excerpt."""
        if not err.info_started:
            excerpt = script[:150] if script else "<script>"
            err.info_started = True
            err.frames += 1
            err.errorinfo = '%s\n    while executing\n"%s"' % (
                err.errorinfo, excerpt)
            self._set_error_globals(err)

    def eval(self, script):
        """Evaluate a script string, returning its result string."""
        nesting = self._nesting
        if nesting >= self.recursion_limit:
            raise self._recursion_error()
        if nesting == 0:
            if self.limit_time_ms or self.limit_commands:
                # _arm_limits inlined: at bytecode-VM speeds a method
                # call per top-level eval is measurable against the <5%
                # armed-overhead budget.
                self._next_check = self.cmd_count + _CHECK_INTERVAL
                self._limit_fresh = True
                self._limits_armed = True
        else:
            # Nested evals count as watchdog work units: an empty loop
            # body re-enters eval every iteration without dispatching
            # any command, and must still trip the budget.  The bump is
            # unconditional (armed or not) so the armed hot path costs
            # only the amortised slow-path check, and ``info cmdcount``
            # is identical either way; unarmed, ``_next_check`` is the
            # never-reached sentinel, so the compare never fires.
            count = self.cmd_count + 1
            self.cmd_count = count
            if count >= self._next_check:
                self._check_limits(count)
        if nesting >= self._peak_nesting:
            self._peak_nesting = nesting + 1
        self._nesting = nesting + 1
        try:
            if self.compile_enabled:
                return self.compile_script(script).execute(self)
            result = ""
            line = 1
            scan = 0
            for command in self.parse_cache.get(script):
                pos = command.pos
                if pos > scan:
                    line += script.count("\n", scan, pos)
                    scan = pos
                result = self._invoke(command, line)
            return result
        except TclError as err:
            self._start_errorinfo(err, script)
            raise
        except RecursionError:
            raise self._recursion_error()
        except TclReturn as ret:
            # ``return`` at the top level ends the script normally.
            if nesting == 0:
                return ret.result
            raise
        except (TclBreak, TclContinue) as exc:
            if nesting == 0:
                raise TclError(str(exc))
            raise
        finally:
            self._nesting = nesting
            if nesting == 0:
                self._limits_armed = False
                self._next_check = _NO_CHECK

    def eval_compiled(self, compiled):
        """``eval`` for an already-compiled script (same guard rails)."""
        nesting = self._nesting
        if nesting >= self.recursion_limit:
            raise self._recursion_error()
        if nesting == 0:
            if self.limit_time_ms or self.limit_commands:
                # _arm_limits inlined: at bytecode-VM speeds a method
                # call per top-level eval is measurable against the <5%
                # armed-overhead budget.
                self._next_check = self.cmd_count + _CHECK_INTERVAL
                self._limit_fresh = True
                self._limits_armed = True
        else:
            # Nested evals count as watchdog work units: an empty loop
            # body re-enters eval every iteration without dispatching
            # any command, and must still trip the budget.  The bump is
            # unconditional (armed or not) so the armed hot path costs
            # only the amortised slow-path check, and ``info cmdcount``
            # is identical either way; unarmed, ``_next_check`` is the
            # never-reached sentinel, so the compare never fires.
            count = self.cmd_count + 1
            self.cmd_count = count
            if count >= self._next_check:
                self._check_limits(count)
        if nesting >= self._peak_nesting:
            self._peak_nesting = nesting + 1
        self._nesting = nesting + 1
        try:
            return compiled.execute(self)
        except TclError as err:
            self._start_errorinfo(err, getattr(compiled, "source", ""))
            raise
        except RecursionError:
            raise self._recursion_error()
        except TclReturn as ret:
            if nesting == 0:
                return ret.result
            raise
        except (TclBreak, TclContinue) as exc:
            if nesting == 0:
                raise TclError(str(exc))
            raise
        finally:
            self._nesting = nesting
            if nesting == 0:
                self._limits_armed = False
                self._next_check = _NO_CHECK

    def script_evaluator(self, script):
        """A zero-argument callable evaluating ``script`` each call.

        The loop-body analogue of :meth:`compile_expr_truth`: with
        compilation on, the body is compiled on the *first* call (a
        loop that never runs must not surface a body parse error,
        matching uncompiled evaluation) and later calls skip straight
        to the compiled form; with compilation off, each call is a
        plain ``eval``.
        """
        if not self.compile_enabled:
            return lambda: self.eval(script)
        memo = []

        def run():
            if not memo:
                memo.append(self.compile_script(script))
            return self.eval_compiled(memo[0])

        return run

    def _invoke(self, parsed, line=1):
        argv = [self.substitute_word(w) for w in parsed.words]
        if not argv or argv[0] == "":
            return ""
        return self.call(argv, line)

    def call(self, argv, line=None):
        """Invoke a command given an already-substituted argv.

        ``line`` is the 1-based source line of the command in the
        script it came from (threaded by the compiled commands and the
        uncompiled eval loop) and feeds the ``(procedure ... line N)``
        errorInfo markers.
        """
        count = self.cmd_count + 1
        self.cmd_count = count
        if count >= self._next_check:
            self._check_limits(count)
        func = self.commands.get(argv[0])
        if func is None:
            func = self.commands.get("unknown")
            if func is None:
                err = TclError('invalid command name "%s"' % argv[0])
                self._record_error_frame(err, argv, line)
                raise err
            argv = ["unknown"] + argv
        try:
            result = func(self, argv)
        except TclError as err:
            self._record_error_frame(err, argv, line)
            raise
        except (TclReturn, TclBreak, TclContinue):
            raise
        except RecursionError:
            # Handled at the eval boundary (too many nested evaluations).
            raise
        except Exception as exc:
            # The Python-exception firewall: an unexpected exception in
            # a command implementation becomes a Tcl error carrying a
            # one-line summary; the traceback goes to the panic log,
            # never onto the protocol.
            self.firewall_catches += 1
            summary = log_panic('command "%s"' % argv[0], exc)
            err = TclError(
                'internal error in command "%s" (%s)' % (argv[0], summary))
            self._record_error_frame(err, argv, line)
            raise err from None
        return "" if result is None else result

    def _record_error_frame(self, err, argv, line):
        """Append one Tcl-style errorInfo frame while an error unwinds.

        The innermost command contributes ``while executing``, each
        enclosing command ``invoked from within``, exactly like Tcl's
        Tcl_AddErrorInfo discipline; accumulation is capped so deep
        recursions unwind in O(depth), not O(depth^2) string building.
        """
        err.proc_line = line
        if err.skip_frame:
            err.skip_frame = False
        elif err.frames < ERRORINFO_FRAME_LIMIT:
            self._append_error_frame(err, " ".join(argv)[:150])
        self._set_error_globals(err)

    def _record_error_frame_text(self, err, text, line):
        """Like :meth:`_record_error_frame` for a precomputed frame text.

        The bytecode VM's inlined statements know their substituted
        command text without materialising an argv list; this variant
        keeps the frame discipline (skip_frame, the frame cap, the
        elision marker, errorInfo/errorCode globals) byte-identical.
        """
        err.proc_line = line
        if err.skip_frame:
            err.skip_frame = False
        elif err.frames < ERRORINFO_FRAME_LIMIT:
            self._append_error_frame(err, text)
        self._set_error_globals(err)

    def _append_error_frame(self, err, text):
        err.frames += 1
        if err.info_started:
            err.errorinfo = '%s\n    invoked from within\n"%s"' % (
                err.errorinfo, text)
        else:
            err.info_started = True
            err.errorinfo = '%s\n    while executing\n"%s"' % (
                err.errorinfo, text)
        if err.frames == ERRORINFO_FRAME_LIMIT:
            err.errorinfo += "\n    (additional stack frames elided)"

    def _set_error_globals(self, err):
        """Maintain the ``errorInfo``/``errorCode`` globals (keeping any
        traces attached to existing scalar variables)."""
        gvars = self.global_frame.vars
        var = gvars.get("errorInfo")
        if var is not None and var.kind == _SCALAR:
            var.value = err.errorinfo
        else:
            gvars["errorInfo"] = _Var(_SCALAR, err.errorinfo)
        code = err.errorcode if err.errorcode is not None else "NONE"
        var = gvars.get("errorCode")
        if var is not None and var.kind == _SCALAR:
            var.value = code
        else:
            gvars["errorCode"] = _Var(_SCALAR, code)

    def eval_expr_string(self, text):
        """Evaluate an expr string to its Tcl string result."""
        return format_number(
            eval_expr(text, self._expr_env, use_cache=self.compile_enabled))

    def eval_expr_truth(self, text):
        try:
            value = eval_expr(text, self._expr_env,
                              use_cache=self.compile_enabled)
        except TclError:
            # Bare boolean words ("yes", "off", ...) are not expr syntax
            # but Tcl_ExprBoolean accepts them; mirror that.
            stripped = text.strip()
            if stripped and all(c.isalnum() for c in stripped):
                return is_true(stripped)
            raise
        if isinstance(value, str):
            return is_true(value)
        return value != 0

    def compile_expr_truth(self, text):
        """A zero-argument truth test for ``text``, parse hoisted out.

        ``while`` and ``for`` evaluate the same condition on every
        iteration; this compiles the expression AST once and returns a
        closure that only walks it.  Falls back to the per-call path
        (identical semantics, including the bare-boolean-word fallback)
        when the text does not parse or compilation is disabled.
        """
        if not self.compile_enabled:
            return lambda: self.eval_expr_truth(text)
        try:
            ast = compile_expr(text)
        except TclError:
            return lambda: self.eval_expr_truth(text)
        env = self._expr_env

        def truth():
            try:
                value = eval_compiled_expr(ast, env)
            except TclError:
                stripped = text.strip()
                if stripped and all(c.isalnum() for c in stripped):
                    return is_true(stripped)
                raise
            if isinstance(value, str):
                return is_true(value)
            return value != 0

        return truth

    # ------------------------------------------------------------------
    # Cache introspection (``info cachestats``)

    def cache_stats(self):
        """Hit/miss/eviction counters for every evaluation cache.

        ``parse``, ``compile`` and ``bytecode`` are per-interpreter;
        ``expr`` is the process-wide AST cache shared by all
        interpreters.
        """
        return {
            "parse": self.parse_cache.stats(),
            "compile": self.compile_cache.stats(),
            "bytecode": self.bytecode_cache.stats(),
            "expr": _expr_ast_cache.stats(),
        }

    def reset_cache_stats(self):
        self.parse_cache.reset_stats()
        self.compile_cache.reset_stats()
        self.bytecode_cache.reset_stats()
        _expr_ast_cache.reset_stats()

    def clear_caches(self):
        """Drop all cached parses/compiles (the expr cache is global)."""
        self.parse_cache.clear()
        self.compile_cache.clear()
        self.bytecode_cache.clear()
        _expr_ast_cache.clear()

    # ------------------------------------------------------------------
    # Fault-containment introspection (``info evalstats``)

    def eval_stats(self):
        """Counters for the fault-containment layer.

        ``limit_trips`` counts watchdog/recursion-limit activations;
        ``firewall_catches`` counts Python exceptions converted to Tcl
        errors; ``peak_nesting`` is the deepest evaluation nesting seen
        since the last reset.
        """
        return {
            "cmd_count": self.cmd_count,
            "recursion_limit": self.recursion_limit,
            "peak_nesting": self._peak_nesting,
            "time_limit_ms": self.limit_time_ms,
            "command_limit": self.limit_commands,
            "limit_trips": dict(self._limit_trips),
            "firewall_catches": self.firewall_catches,
            "hidden_commands": len(self.hidden_commands),
        }

    def reset_eval_stats(self):
        self._peak_nesting = 0
        self.firewall_catches = 0
        self._limit_trips = {"commands": 0, "time": 0, "recursion": 0}

    # ------------------------------------------------------------------
    # Procedures

    def define_proc(self, name, formals, body):
        self.cmds_generation += 1
        self.procs[name] = Proc(name, formals, body)
        self.commands[name] = _call_proc

    def call_proc(self, proc, argv):
        frame = CallFrame(len(self.frames), proc_name=proc.name, argv=argv)
        formals = proc.formals
        args = argv[1:]
        i = 0
        for name, default in formals:
            if name == "args" and (name, default) == formals[-1]:
                from repro.tcl.lists import list_to_string

                frame.vars["args"] = _Var(_SCALAR, list_to_string(args[i:]))
                i = len(args)
                break
            if i < len(args):
                frame.vars[name] = _Var(_SCALAR, args[i])
                i += 1
            elif default is not None:
                frame.vars[name] = _Var(_SCALAR, default)
            else:
                raise TclError(
                    'no value given for parameter "%s" to "%s"' % (name, proc.name)
                )
        if i < len(args):
            raise TclError(
                'called "%s" with too many arguments' % proc.name
            )
        self.frames.append(frame)
        try:
            return self.eval(proc.body)
        except TclError as err:
            if err.frames < ERRORINFO_FRAME_LIMIT:
                err.errorinfo += '\n    (procedure "%s" line %d)' % (
                    proc.name, err.proc_line or 1)
            raise
        except TclReturn as ret:
            return ret.result
        except (TclBreak, TclContinue) as exc:
            raise TclError(str(exc))
        finally:
            self.frames.pop()

    # ------------------------------------------------------------------
    # Misc services

    def output(self, text):
        """Write program output (used by puts/echo)."""
        if self.write_output is not None:
            self.write_output(text)
        else:
            print(text, end="")

    def time_script(self, script, count):
        start = _time.perf_counter()
        for _ in range(count):
            self.eval(script)
        elapsed = _time.perf_counter() - start
        return int(elapsed * 1e6 / max(count, 1))


def _call_proc(interp, argv):
    proc = interp.procs.get(argv[0])
    if proc is None:
        raise TclError('invalid command name "%s"' % argv[0])
    return interp.call_proc(proc, argv)
