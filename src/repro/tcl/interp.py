"""The Tcl interpreter: frames, variables, substitution, dispatch.

The design mirrors the C implementation's structure: an interpreter owns
a command table and a stack of call frames; every command is a callable
``(interp, argv) -> str`` where ``argv[0]`` is the command name, exactly
like ``Tcl_CmdProc``.  Variables live in frames and may be scalars,
associative arrays, or upvar links into another frame.
"""

import time as _time

from repro.tcl import compile as _compile
from repro.tcl import parser as _parser
from repro.tcl.cache import LRUCache
from repro.tcl.errors import TclBreak, TclContinue, TclError, TclReturn
from repro.tcl.expr import (
    ast_cache as _expr_ast_cache,
    compile_expr,
    eval_compiled_expr,
    eval_expr,
    format_number,
    is_true,
)
from repro.tcl.lists import quote_element

_SCALAR = 0
_ARRAY = 1
_LINK = 2


class _Var:
    __slots__ = ("kind", "value", "traces")

    def __init__(self, kind, value):
        self.kind = kind
        self.value = value  # str | dict | (frame, name)
        self.traces = None  # list of _Trace, lazily created


class _Trace:
    """One ``trace variable`` registration."""

    __slots__ = ("ops", "command", "active")

    def __init__(self, ops, command):
        self.ops = ops
        self.command = command
        self.active = False  # reentrancy guard (Tcl disables a firing trace)


class CallFrame:
    """One level of the Tcl procedure call stack."""

    __slots__ = ("vars", "level", "proc_name", "argv")

    def __init__(self, level, proc_name=None, argv=None):
        self.vars = {}
        self.level = level
        self.proc_name = proc_name
        self.argv = argv or []


class Proc:
    """A Tcl procedure: formal arguments (with defaults) and a body."""

    __slots__ = ("name", "formals", "body")

    def __init__(self, name, formals, body):
        self.name = name
        self.formals = formals  # list of (name, default_or_None)
        self.body = body


def split_varname(name):
    """Split ``a(b)`` into ``("a", "b")``; plain names give index None."""
    if name.endswith(")"):
        paren = name.find("(")
        if paren >= 0:
            return name[:paren], name[paren + 1 : -1]
    return name, None


class _ExprEnv:
    """Adapter giving the expr evaluator access to interpreter state."""

    __slots__ = ("interp",)

    def __init__(self, interp):
        self.interp = interp

    def substitute_var(self, name, index_parts):
        index = None
        if index_parts is not None:
            index = self.interp._substitute_parts(index_parts)
        return self.interp.get_var(name, index)

    def eval_script(self, script):
        return self.interp.eval(script)


class Interp:
    """A Tcl interpreter with all built-in commands registered.

    ``Interp()`` gives plain Tcl; Wafe layers its widget commands on top
    by calling :meth:`register`.
    """

    def __init__(self, register_builtins=True, compile=True):
        self.commands = {}
        self.procs = {}
        self.frames = [CallFrame(0)]
        self.parse_cache = _parser.ParseCache()
        # ``compile=False`` is the A/B escape hatch: evaluation falls
        # back to per-eval word substitution and uncached expr parsing,
        # which is the reference semantics the compiled path must match.
        self.compile_enabled = bool(compile)
        self.compile_cache = LRUCache(maxsize=512)
        self._expr_env = _ExprEnv(self)
        self.cmd_count = 0
        self.max_nesting = 120
        self._nesting = 0
        # Output hook: ``puts``/``echo`` write through here so embedders
        # (the Wafe frontend) can redirect output to the backend pipe.
        self.write_output = None
        # Extra ``info`` subcommands registered by embedders (Wafe adds
        # ``info xrmstats`` next to the built-in ``info cachestats``).
        self.info_extensions = {}
        if register_builtins:
            from repro.tcl import cmds_core, cmds_info, cmds_list, cmds_string

            cmds_core.register(self)
            cmds_list.register(self)
            cmds_string.register(self)
            cmds_info.register(self)

    # ------------------------------------------------------------------
    # Command table

    def register(self, name, func):
        """Register a command: ``func(interp, argv) -> str``."""
        self.commands[name] = func

    def unregister(self, name):
        self.commands.pop(name, None)
        self.procs.pop(name, None)

    def rename(self, old, new):
        if old not in self.commands:
            raise TclError('can\'t rename "%s": command doesn\'t exist' % old)
        if new == "":
            self.commands.pop(old)
            self.procs.pop(old, None)
            return
        if new in self.commands:
            raise TclError('can\'t rename to "%s": command already exists' % new)
        self.commands[new] = self.commands.pop(old)
        if old in self.procs:
            self.procs[new] = self.procs.pop(old)

    # ------------------------------------------------------------------
    # Frames and variables

    @property
    def current_frame(self):
        return self.frames[-1]

    @property
    def global_frame(self):
        return self.frames[0]

    def _resolve(self, frame, name):
        """Follow upvar links; returns (frame, name)."""
        seen = 0
        while True:
            var = frame.vars.get(name)
            if var is not None and var.kind == _LINK:
                frame, name = var.value
                seen += 1
                if seen > 100:
                    raise TclError("too many nested upvar links")
            else:
                return frame, name

    def set_var(self, name, value, index=None, frame=None):
        if index is None:
            name, index = split_varname(name)
        if frame is None:
            frame = self.current_frame
        frame, name = self._resolve(frame, name)
        if index is None:
            # upvar links may point at an array element ("a(k)").
            name, index = split_varname(name)
        var = frame.vars.get(name)
        if index is None:
            if var is not None and var.kind == _ARRAY:
                raise TclError('can\'t set "%s": variable is array' % name)
            if var is not None and var.kind == _SCALAR:
                var.value = value  # keep traces attached
            else:
                var = _Var(_SCALAR, value)
                frame.vars[name] = var
        else:
            if var is None or var.kind != _ARRAY:
                if var is not None and var.kind == _SCALAR:
                    if var.value is None:
                        # Trace-only placeholder: become an array.
                        var.kind = _ARRAY
                        var.value = {}
                    else:
                        raise TclError(
                            'can\'t set "%s(%s)": variable isn\'t array'
                            % (name, index)
                        )
                else:
                    var = _Var(_ARRAY, {})
                    frame.vars[name] = var
            var.value[index] = value
        self._fire_traces(var, name, index, "w")
        return value

    def get_var(self, name, index=None, frame=None):
        if index is None:
            name, index = split_varname(name)
        if frame is None:
            frame = self.current_frame
        frame, name = self._resolve(frame, name)
        if index is None:
            name, index = split_varname(name)
        var = frame.vars.get(name)
        if var is None:
            raise TclError('can\'t read "%s": no such variable' % name)
        self._fire_traces(var, name, index, "r")
        if index is None:
            if var.kind == _ARRAY:
                raise TclError('can\'t read "%s": variable is array' % name)
            if var.value is None:
                # A trace-only placeholder: the variable has no value yet.
                raise TclError('can\'t read "%s": no such variable' % name)
            return var.value
        if var.kind != _ARRAY:
            raise TclError('can\'t read "%s(%s)": variable isn\'t array' % (name, index))
        if index not in var.value:
            raise TclError(
                'can\'t read "%s(%s)": no such element in array' % (name, index)
            )
        return var.value[index]

    def var_exists(self, name, index=None, frame=None):
        if index is None:
            name, index = split_varname(name)
        if frame is None:
            frame = self.current_frame
        frame, name = self._resolve(frame, name)
        if index is None:
            name, index = split_varname(name)
        var = frame.vars.get(name)
        if var is None or var.kind == _LINK:
            return False
        if var.kind == _SCALAR and var.value is None:
            return False  # trace-only placeholder
        if index is None:
            return True
        return var.kind == _ARRAY and index in var.value

    def unset_var(self, name, index=None, frame=None):
        if index is None:
            name, index = split_varname(name)
        if frame is None:
            frame = self.current_frame
        owner = frame
        frame, name = self._resolve(frame, name)
        if index is None:
            name, index = split_varname(name)
        var = frame.vars.get(name)
        if var is None:
            raise TclError('can\'t unset "%s": no such variable' % name)
        self._fire_traces(var, name, index, "u")
        if index is None:
            del frame.vars[name]
        else:
            if var.kind != _ARRAY or index not in var.value:
                raise TclError(
                    'can\'t unset "%s(%s)": no such element in array' % (name, index)
                )
            del var.value[index]
        del owner  # links stay; reading through them re-raises no-such-var

    def _fire_traces(self, var, name, index, op):
        """Run ``trace variable`` commands registered for this op."""
        if var is None or not var.traces:
            return
        for trace in list(var.traces):
            if op not in trace.ops or trace.active:
                continue
            trace.active = True
            try:
                self.eval("%s %s %s %s" % (
                    trace.command, quote_element(name),
                    quote_element(index if index is not None else ""), op))
            finally:
                trace.active = False

    def add_trace(self, name, ops, command, frame=None):
        """``trace variable``: attach a trace (creates the variable slot
        if needed, like Tcl does for write/unset traces)."""
        base, index = split_varname(name)
        if frame is None:
            frame = self.current_frame
        frame, base = self._resolve(frame, base)
        var = frame.vars.get(base)
        if var is None:
            var = _Var(_ARRAY if index is not None else _SCALAR,
                       {} if index is not None else None)
            frame.vars[base] = var
        if var.traces is None:
            var.traces = []
        var.traces.append(_Trace(ops, command))

    def remove_trace(self, name, ops, command, frame=None):
        base, __ = split_varname(name)
        if frame is None:
            frame = self.current_frame
        frame, base = self._resolve(frame, base)
        var = frame.vars.get(base)
        if var is None or not var.traces:
            return
        for trace in list(var.traces):
            if trace.ops == ops and trace.command == command:
                var.traces.remove(trace)
                return

    def trace_info(self, name, frame=None):
        base, __ = split_varname(name)
        if frame is None:
            frame = self.current_frame
        frame, base = self._resolve(frame, base)
        var = frame.vars.get(base)
        if var is None or not var.traces:
            return []
        return [(t.ops, t.command) for t in var.traces]

    def link_var(self, local_name, target_frame, target_name):
        """Implement upvar/global: alias local_name to another frame's var."""
        self.current_frame.vars[local_name] = _Var(_LINK, (target_frame, target_name))

    def array_of(self, name, frame=None, create=False):
        """Return the dict behind array ``name`` (or None)."""
        if frame is None:
            frame = self.current_frame
        frame, name = self._resolve(frame, name)
        var = frame.vars.get(name)
        if var is None:
            if not create:
                return None
            var = _Var(_ARRAY, {})
            frame.vars[name] = var
        if var.kind != _ARRAY:
            return None
        return var.value

    def frame_at_level(self, spec):
        """Resolve a level spec: ``#0`` absolute, digits relative."""
        if spec.startswith("#"):
            try:
                level = int(spec[1:])
            except ValueError:
                raise TclError('bad level "%s"' % spec)
            if not 0 <= level < len(self.frames):
                raise TclError('bad level "%s"' % spec)
            return self.frames[level]
        try:
            up = int(spec)
        except ValueError:
            raise TclError('bad level "%s"' % spec)
        target = len(self.frames) - 1 - up
        if target < 0:
            raise TclError('bad level "%s"' % spec)
        return self.frames[target]

    # ------------------------------------------------------------------
    # Substitution and evaluation

    def _substitute_parts(self, parts):
        if len(parts) == 1:
            kind, payload = parts[0]
            if kind == _parser.LITERAL:
                return payload
            if kind == _parser.VARSUB:
                name, index_parts = payload
                index = (
                    self._substitute_parts(index_parts)
                    if index_parts is not None
                    else None
                )
                return self.get_var(name, index)
            return self.eval(payload)
        out = []
        for kind, payload in parts:
            if kind == _parser.LITERAL:
                out.append(payload)
            elif kind == _parser.VARSUB:
                name, index_parts = payload
                index = (
                    self._substitute_parts(index_parts)
                    if index_parts is not None
                    else None
                )
                out.append(self.get_var(name, index))
            else:
                out.append(self.eval(payload))
        return "".join(out)

    def substitute_word(self, word):
        return self._substitute_parts(word.parts)

    def compile_script(self, script):
        """The memoised ``script -> CompiledScript`` used by ``eval``.

        Loop commands hoist this out of their iteration (the returned
        object is immutable and resolves command names at call time, so
        holding on to it cannot observe stale ``proc``/``rename``
        state).  Only meaningful with compilation enabled.
        """
        compiled = self.compile_cache.get(script)
        if compiled is None:
            compiled = self.compile_cache.put(
                script,
                _compile.compile_script(self.parse_cache.get(script)),
            )
        return compiled

    def eval(self, script):
        """Evaluate a script string, returning its result string."""
        self._nesting += 1
        if self._nesting > self.max_nesting:
            self._nesting -= 1
            raise TclError(
                "too many nested calls to Tcl_Eval (infinite loop?)"
            )
        try:
            if self.compile_enabled:
                return self.compile_script(script).execute(self)
            result = ""
            for command in self.parse_cache.get(script):
                result = self._invoke(command)
            return result
        except RecursionError:
            raise TclError("too many nested calls to Tcl_Eval (infinite loop?)")
        except TclReturn as ret:
            # ``return`` at the top level ends the script normally.
            if self._nesting == 1:
                return ret.result
            raise
        except (TclBreak, TclContinue) as exc:
            if self._nesting == 1:
                raise TclError(str(exc))
            raise
        finally:
            self._nesting -= 1

    def eval_compiled(self, compiled):
        """``eval`` for an already-compiled script (same guard rails)."""
        self._nesting += 1
        if self._nesting > self.max_nesting:
            self._nesting -= 1
            raise TclError(
                "too many nested calls to Tcl_Eval (infinite loop?)"
            )
        try:
            return compiled.execute(self)
        except RecursionError:
            raise TclError("too many nested calls to Tcl_Eval (infinite loop?)")
        except TclReturn as ret:
            if self._nesting == 1:
                return ret.result
            raise
        except (TclBreak, TclContinue) as exc:
            if self._nesting == 1:
                raise TclError(str(exc))
            raise
        finally:
            self._nesting -= 1

    def script_evaluator(self, script):
        """A zero-argument callable evaluating ``script`` each call.

        The loop-body analogue of :meth:`compile_expr_truth`: with
        compilation on, the body is compiled on the *first* call (a
        loop that never runs must not surface a body parse error,
        matching uncompiled evaluation) and later calls skip straight
        to the compiled form; with compilation off, each call is a
        plain ``eval``.
        """
        if not self.compile_enabled:
            return lambda: self.eval(script)
        memo = []

        def run():
            if not memo:
                memo.append(self.compile_script(script))
            return self.eval_compiled(memo[0])

        return run

    def _invoke(self, parsed):
        argv = [self.substitute_word(w) for w in parsed.words]
        if not argv or argv[0] == "":
            return ""
        return self.call(argv)

    def call(self, argv):
        """Invoke a command given an already-substituted argv."""
        self.cmd_count += 1
        func = self.commands.get(argv[0])
        if func is None:
            unknown = self.commands.get("unknown")
            if unknown is not None:
                return unknown(self, ["unknown"] + argv)
            raise TclError('invalid command name "%s"' % argv[0])
        try:
            result = func(self, argv)
        except TclError as err:
            err.errorinfo = '%s\n    while executing\n"%s"' % (
                err.errorinfo,
                " ".join(argv)[:150],
            )
            self.global_frame.vars["errorInfo"] = _Var(_SCALAR, err.errorinfo)
            raise
        return "" if result is None else result

    def eval_expr_string(self, text):
        """Evaluate an expr string to its Tcl string result."""
        return format_number(
            eval_expr(text, self._expr_env, use_cache=self.compile_enabled))

    def eval_expr_truth(self, text):
        try:
            value = eval_expr(text, self._expr_env,
                              use_cache=self.compile_enabled)
        except TclError:
            # Bare boolean words ("yes", "off", ...) are not expr syntax
            # but Tcl_ExprBoolean accepts them; mirror that.
            stripped = text.strip()
            if stripped and all(c.isalnum() for c in stripped):
                return is_true(stripped)
            raise
        if isinstance(value, str):
            return is_true(value)
        return value != 0

    def compile_expr_truth(self, text):
        """A zero-argument truth test for ``text``, parse hoisted out.

        ``while`` and ``for`` evaluate the same condition on every
        iteration; this compiles the expression AST once and returns a
        closure that only walks it.  Falls back to the per-call path
        (identical semantics, including the bare-boolean-word fallback)
        when the text does not parse or compilation is disabled.
        """
        if not self.compile_enabled:
            return lambda: self.eval_expr_truth(text)
        try:
            ast = compile_expr(text)
        except TclError:
            return lambda: self.eval_expr_truth(text)
        env = self._expr_env

        def truth():
            try:
                value = eval_compiled_expr(ast, env)
            except TclError:
                stripped = text.strip()
                if stripped and all(c.isalnum() for c in stripped):
                    return is_true(stripped)
                raise
            if isinstance(value, str):
                return is_true(value)
            return value != 0

        return truth

    # ------------------------------------------------------------------
    # Cache introspection (``info cachestats``)

    def cache_stats(self):
        """Hit/miss/eviction counters for every evaluation cache.

        ``parse`` and ``compile`` are per-interpreter; ``expr`` is the
        process-wide AST cache shared by all interpreters.
        """
        return {
            "parse": self.parse_cache.stats(),
            "compile": self.compile_cache.stats(),
            "expr": _expr_ast_cache.stats(),
        }

    def reset_cache_stats(self):
        self.parse_cache.reset_stats()
        self.compile_cache.reset_stats()
        _expr_ast_cache.reset_stats()

    def clear_caches(self):
        """Drop all cached parses/compiles (the expr cache is global)."""
        self.parse_cache.clear()
        self.compile_cache.clear()
        _expr_ast_cache.clear()

    # ------------------------------------------------------------------
    # Procedures

    def define_proc(self, name, formals, body):
        self.procs[name] = Proc(name, formals, body)
        self.commands[name] = _call_proc

    def call_proc(self, proc, argv):
        frame = CallFrame(len(self.frames), proc_name=proc.name, argv=argv)
        formals = proc.formals
        args = argv[1:]
        i = 0
        for name, default in formals:
            if name == "args" and (name, default) == formals[-1]:
                from repro.tcl.lists import list_to_string

                frame.vars["args"] = _Var(_SCALAR, list_to_string(args[i:]))
                i = len(args)
                break
            if i < len(args):
                frame.vars[name] = _Var(_SCALAR, args[i])
                i += 1
            elif default is not None:
                frame.vars[name] = _Var(_SCALAR, default)
            else:
                raise TclError(
                    'no value given for parameter "%s" to "%s"' % (name, proc.name)
                )
        if i < len(args):
            raise TclError(
                'called "%s" with too many arguments' % proc.name
            )
        self.frames.append(frame)
        try:
            return self.eval(proc.body)
        except TclReturn as ret:
            return ret.result
        except (TclBreak, TclContinue) as exc:
            raise TclError(str(exc))
        finally:
            self.frames.pop()

    # ------------------------------------------------------------------
    # Misc services

    def output(self, text):
        """Write program output (used by puts/echo)."""
        if self.write_output is not None:
            self.write_output(text)
        else:
            print(text, end="")

    def time_script(self, script, count):
        start = _time.perf_counter()
        for _ in range(count):
            self.eval(script)
        elapsed = _time.perf_counter() - start
        return int(elapsed * 1e6 / max(count, 1))


def _call_proc(interp, argv):
    proc = interp.procs.get(argv[0])
    if proc is None:
        raise TclError('invalid command name "%s"' % argv[0])
    return interp.call_proc(proc, argv)
