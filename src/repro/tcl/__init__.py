"""A from-scratch Tcl interpreter, the host language of Wafe.

The paper embeds Tcl (Ousterhout's C implementation, circa Tcl 6) as the
command language of the frontend.  This package reimplements the Tcl the
paper relies on in pure Python: the full quoting syntax (braces, double
quotes, command and variable substitution, backslash escapes), the
``expr`` expression language, procedures with ``uplevel``/``upvar``,
associative arrays, the list and string command families, and
introspection via ``info``.

Public entry points:

* :class:`~repro.tcl.interp.Interp` -- an interpreter instance with all
  built-in commands registered.
* :class:`~repro.tcl.errors.TclError` -- the error raised for Tcl-level
  failures (maps onto Tcl's ``TCL_ERROR`` result code).
* :func:`~repro.tcl.lists.list_to_string` / :func:`~repro.tcl.lists.string_to_list`
  -- conversion between Python lists and Tcl list syntax.
"""

from repro.tcl.cache import LRUCache
from repro.tcl.errors import TclError, TclBreak, TclContinue, TclReturn
from repro.tcl.interp import Interp
from repro.tcl.lists import list_to_string, string_to_list

__all__ = [
    "Interp",
    "LRUCache",
    "TclError",
    "TclBreak",
    "TclContinue",
    "TclReturn",
    "list_to_string",
    "string_to_list",
]
