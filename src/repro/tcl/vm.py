"""The bytecode VM: dispatch loop with inline caches.

``run`` executes a :class:`repro.tcl.bytecode.Code` object against an
interpreter.  The design constraint is *semantic invisibility*: the VM
must be byte-identical to the tree walker (``Interp(compile=False)``)
on results, errorInfo tracebacks, errorCode, variable traces, and the
watchdog's work-unit accounting (tests/test_tcl_vm_differential.py
pins all of this).  Every fast path therefore mirrors a specific slow
path line-for-line:

* command dispatch of an inlined statement costs exactly one
  ``cmd_count`` bump plus the same single ``count >= _next_check``
  compare that ``Interp.call`` does;
* nested block entry (loop bodies, ``if`` arms) mirrors the nested
  branch of ``Interp.eval_compiled``: recursion check, unconditional
  work unit, peak-nesting update, ``_start_errorinfo`` on error;
* any condition the fast path cannot prove (variable has traces, is an
  array or link, value is not cached, command was renamed) falls back
  to the real command dispatch via ``Interp.call`` -- never to a
  reimplementation.

Inline-cache validity (see bytecode.py for cell layout): a command
binding is valid while ``interp.cmds_generation`` is unchanged, and is
re-resolved (not discarded) on mismatch, so a mid-script ``proc``
definition costs one dict lookup per op rather than a recompile.  A
variable slot is valid while ``interp.var_epoch`` is unchanged (bumped
by ``unset``/``upvar``) and the cached frame *is* the current frame;
per-use checks on ``var.kind``/``var.traces`` catch in-place mutation.

Integer fast paths ride on the numeric shadow ``_Var.num``/``num_str``:
the shadow is trusted only when ``var.num_str is var.value`` (object
identity), so any writer that replaces ``var.value`` silently
invalidates it without needing to know shadows exist.
"""

from repro.tcl.bytecode import (
    CMP_EQ,
    CMP_GE,
    CMP_GT,
    CMP_LE,
    CMP_LT,
    E_ADD,
    E_AND,
    E_BIN,
    E_CMD,
    E_CODE,
    E_CONST,
    E_EQ,
    E_FUNC,
    E_GE,
    E_GT,
    E_JFALSE,
    E_JUMP,
    E_LE,
    E_LOAD,
    E_LOADX,
    E_LT,
    E_MUL,
    E_NE,
    E_OR,
    E_QUOTED,
    E_SUB,
    E_TRUTH,
    E_UNARY,
    OP_CALL,
    OP_CONSTEXPR,
    OP_EXPR,
    OP_FOR,
    OP_FOREACH,
    OP_IF,
    OP_INCR,
    OP_SET,
    OP_SETDEAD,
    OP_SETRD,
    OP_WHILE,
    W_CMD,
    W_CODE,
    W_CONST,
    W_FOLDED,
    W_VAR,
    W_VARIDX,
    disassemble,
)
from repro.tcl.errors import (
    TclBreak,
    TclContinue,
    TclError,
    TclReturn,
    log_panic,
)
from repro.tcl.expr import (
    _binary,
    _truth,
    call_math_func,
    format_number,
    is_true,
    unary_op,
)
from repro.tcl.lists import list_to_string, string_to_list


# ----------------------------------------------------------------------
# Cell helpers

def _fill_op_cell(interp, cell, name):
    """Refill a statement cell's variable slots after a slow-path run."""
    frame = interp.frames[-1]
    try:
        tframe, tname = interp._resolve(frame, name)
    except TclError:
        return
    var = tframe.vars.get(tname)
    if var is not None and var.kind == 0 and var.traces is None:
        cell[1] = interp.var_epoch
        cell[2] = frame
        cell[3] = var


def _fill_word_cell(interp, cell, name):
    frame = interp.frames[-1]
    try:
        tframe, tname = interp._resolve(frame, name)
    except TclError:
        return
    var = tframe.vars.get(tname)
    if var is not None and var.kind == 0 and var.traces is None:
        cell[0] = interp.var_epoch
        cell[1] = frame
        cell[2] = var


def _load(interp, word):
    """Evaluate a W_VAR word: cached scalar read or full get_var."""
    cell = word[1]
    if cell[1] is interp.frames[-1] and cell[0] == interp.var_epoch:
        var = cell[2]
        if var.kind == 0 and var.traces is None:
            value = var.value
            if value is not None:
                return value
    value = interp.get_var(word[2])
    _fill_word_cell(interp, cell, word[2])
    return value


def _word(interp, word):
    """Evaluate any word descriptor to its string value."""
    kind = word[0]
    if kind == W_CONST:
        return word[1]
    if kind == W_VAR:
        return _load(interp, word)
    if kind == W_CODE:
        return _run_block(interp, word[1])
    if kind == W_CMD:
        return interp.eval(word[1])
    if kind == W_VARIDX:
        name, index_parts = word[1]
        return interp.get_var(name, interp._substitute_parts(index_parts))
    if kind == W_FOLDED:
        return _folded_word(interp, word)
    return interp._substitute_parts(word[1])


def _folded_word(interp, word):
    """A ``[expr ...]`` word whose block folded to a single constant.

    Pays exactly what ``_run_block`` over the one-op block would -- the
    block-entry work unit (raising bare on a trip, like ``_run_block``'s
    pre-try bump), then the expr statement's unit at nesting+1 (a trip
    there seeds errorInfo from the block source, like ``run`` raising
    out of ``_run_block``) -- then returns the precomputed result
    without entering the dispatch loop.
    """
    code = word[1]
    op = code.ops[0]  # the OP_CONSTEXPR
    cell = op[1]
    if cell[0] != interp.cmds_generation:
        if interp.commands.get("expr") is op[7]:
            cell[0] = interp.cmds_generation
        else:
            # ``rename expr``: run the real block, whose own binding
            # check dispatches the fallback (and counts the deopt).
            return _run_block(interp, code)
    nesting = interp._nesting
    if nesting >= interp.recursion_limit:
        raise interp._recursion_error()
    count = interp.cmd_count + 1
    interp.cmd_count = count
    if count >= interp._next_check:
        interp._check_limits(count)
    if nesting >= interp._peak_nesting:
        interp._peak_nesting = nesting + 1
    interp._nesting = nesting + 1
    try:
        count = interp.cmd_count + 1
        interp.cmd_count = count
        if count >= interp._next_check:
            interp._check_limits(count)
        value = op[2]
        if op[3] is not None:
            interp._vm_num = op[3]
            interp._vm_num_str = value
        return value
    except TclError as err:
        interp._start_errorinfo(err, code.source)
        raise
    finally:
        interp._nesting = nesting


def _firewall(interp, cmdname, exc, text, line):
    """Convert a Python exception exactly as ``Interp.call`` would."""
    interp.firewall_catches += 1
    summary = log_panic('command "%s"' % cmdname, exc)
    err = TclError(
        'internal error in command "%s" (%s)' % (cmdname, summary))
    interp._record_error_frame_text(err, text, line)
    return err


# ----------------------------------------------------------------------
# Nested block execution (loop bodies, if arms, [cmd] words)

def _run_block(interp, code):
    """Run a nested Code block; mirrors the nested path of eval_compiled."""
    nesting = interp._nesting
    if nesting >= interp.recursion_limit:
        raise interp._recursion_error()
    count = interp.cmd_count + 1
    interp.cmd_count = count
    if count >= interp._next_check:
        interp._check_limits(count)
    if nesting >= interp._peak_nesting:
        interp._peak_nesting = nesting + 1
    interp._nesting = nesting + 1
    try:
        return run(interp, code)
    except TclError as err:
        interp._start_errorinfo(err, code.source)
        raise
    except RecursionError:
        raise interp._recursion_error()
    finally:
        interp._nesting = nesting


# ----------------------------------------------------------------------
# Expr stack programs

def run_expr(interp, prog):
    """Execute a compiled expr program; returns int/float/str."""
    stack = []
    push = stack.append
    ip = 0
    n = len(prog)
    while ip < n:
        op = prog[ip]
        kind = op[0]
        if kind == E_LOAD:
            cell = op[1]
            if cell[1] is interp.frames[-1] and cell[0] == interp.var_epoch:
                var = cell[2]
                value = var.value
                if var.kind == 0 and var.traces is None and value is not None:
                    push(var.num if var.num_str is value else value)
                    ip += 1
                    continue
            value = interp.get_var(op[2])
            _fill_word_cell(interp, cell, op[2])
            push(value)
        elif kind == E_CONST:
            push(op[1])
        elif kind == E_ADD:
            b = stack.pop()
            a = stack[-1]
            if type(a) is int and type(b) is int:
                stack[-1] = a + b
            else:
                stack[-1] = _binary("+", a, b)
        elif kind == E_SUB:
            b = stack.pop()
            a = stack[-1]
            if type(a) is int and type(b) is int:
                stack[-1] = a - b
            else:
                stack[-1] = _binary("-", a, b)
        elif kind == E_MUL:
            b = stack.pop()
            a = stack[-1]
            if type(a) is int and type(b) is int:
                stack[-1] = a * b
            else:
                stack[-1] = _binary("*", a, b)
        elif kind == E_LT:
            b = stack.pop()
            a = stack[-1]
            if type(a) is int and type(b) is int:
                stack[-1] = 1 if a < b else 0
            else:
                stack[-1] = _binary("<", a, b)
        elif kind == E_GT:
            b = stack.pop()
            a = stack[-1]
            if type(a) is int and type(b) is int:
                stack[-1] = 1 if a > b else 0
            else:
                stack[-1] = _binary(">", a, b)
        elif kind == E_LE:
            b = stack.pop()
            a = stack[-1]
            if type(a) is int and type(b) is int:
                stack[-1] = 1 if a <= b else 0
            else:
                stack[-1] = _binary("<=", a, b)
        elif kind == E_GE:
            b = stack.pop()
            a = stack[-1]
            if type(a) is int and type(b) is int:
                stack[-1] = 1 if a >= b else 0
            else:
                stack[-1] = _binary(">=", a, b)
        elif kind == E_EQ:
            b = stack.pop()
            a = stack[-1]
            if type(a) is int and type(b) is int:
                stack[-1] = 1 if a == b else 0
            else:
                stack[-1] = _binary("==", a, b)
        elif kind == E_NE:
            b = stack.pop()
            a = stack[-1]
            if type(a) is int and type(b) is int:
                stack[-1] = 1 if a != b else 0
            else:
                stack[-1] = _binary("!=", a, b)
        elif kind == E_BIN:
            b = stack.pop()
            stack[-1] = _binary(op[1], stack[-1], b)
        elif kind == E_UNARY:
            stack[-1] = unary_op(op[1], stack[-1])
        elif kind == E_AND:
            a = stack.pop()
            if not (a != 0 if type(a) is int else _truth(a)):
                push(0)
                ip = op[1]
                continue
        elif kind == E_OR:
            a = stack.pop()
            if a != 0 if type(a) is int else _truth(a):
                push(1)
                ip = op[1]
                continue
        elif kind == E_TRUTH:
            a = stack[-1]
            stack[-1] = 1 if (a != 0 if type(a) is int else _truth(a)) else 0
        elif kind == E_JFALSE:
            a = stack.pop()
            if not (a != 0 if type(a) is int else _truth(a)):
                ip = op[1]
                continue
        elif kind == E_JUMP:
            ip = op[1]
            continue
        elif kind == E_CODE:
            push(_run_block(interp, op[1]))
        elif kind == E_CMD:
            push(interp.eval(op[1]))
        elif kind == E_LOADX:
            name, index_parts = op[1]
            index = (interp._substitute_parts(index_parts)
                     if index_parts is not None else None)
            push(interp.get_var(name, index))
        elif kind == E_QUOTED:
            out = []
            for piece in op[1]:
                if isinstance(piece, str):
                    out.append(piece)
                elif piece[0] == "varref":
                    name, index_parts = piece[1]
                    index = (interp._substitute_parts(index_parts)
                             if index_parts is not None else None)
                    out.append(interp.get_var(name, index))
                else:
                    out.append(interp.eval(piece[1]))
            push("".join(out))
        elif kind == E_FUNC:
            argc = op[2]
            if argc:
                args = stack[-argc:]
                del stack[-argc:]
            else:
                args = []
            push(call_math_func(op[1], args))
        else:  # pragma: no cover - emitter never produces unknown ops
            raise TclError("internal expr error: bad opcode %r" % (kind,))
        ip += 1
    return stack[-1]


def _cond(interp, cond):
    """Evaluate a compiled condition to a truth value.

    Mirrors ``Interp.eval_expr_truth`` / ``compile_expr_truth``:
    identical bare-boolean-word fallback on TclError, identical string
    coercion of the result.
    """
    truth = cond[4]
    if truth is not None:
        # Optimizer-proven constant condition (the program is a single
        # E_CONST whose coercion cannot raise): running it reads no
        # state and bumps no counters, so the answer is precomputed.
        return truth
    fused = cond[3]
    if fused is not None:
        cell = fused[0]
        if cell[1] is interp.frames[-1] and cell[0] == interp.var_epoch:
            var = cell[2]
            value = var.value
            if (var.kind == 0 and var.traces is None
                    and value is not None and var.num_str is value):
                a = var.num
                cmp = fused[2]
                const = fused[3]
                if cmp == CMP_LT:
                    return a < const
                if cmp == CMP_GT:
                    return a > const
                if cmp == CMP_LE:
                    return a <= const
                if cmp == CMP_GE:
                    return a >= const
                if cmp == CMP_EQ:
                    return a == const
                return a != const
    prog = cond[0]
    if prog is None:
        return interp.eval_expr_truth(cond[1])
    try:
        value = run_expr(interp, prog)
    except TclError:
        fallback_word = cond[2]
        if fallback_word is not None:
            return is_true(fallback_word)
        raise
    if type(value) is int:
        return value != 0
    if isinstance(value, str):
        return is_true(value)
    return value != 0


# ----------------------------------------------------------------------
# The dispatch loop

def run(interp, code):
    """Execute a Code object; the VM's statement dispatch loop."""
    result = ""
    frames = interp.frames
    for op in code.ops:
        kind = op[0]

        if kind == OP_CALL:
            result = op[1].execute(interp)
            continue

        if kind == OP_INCR:
            _k, cell, name, dconst, dword, dlit, line, fallback, func = op
            if cell[0] != interp.cmds_generation:
                if interp.commands.get("incr") is func:
                    cell[0] = interp.cmds_generation
                else:
                    interp._vm_stats["deopts"] += 1
                    result = fallback.execute(interp)
                    continue
            if dconst is not None:
                delta = dconst
                dstr = dlit
            elif dword is None:
                delta = 1
                dstr = None
            else:
                delta = None
                dstr = None
                if dword[0] == W_VAR:
                    wcell = dword[1]
                    if (wcell[1] is frames[-1]
                            and wcell[0] == interp.var_epoch):
                        wvar = wcell[2]
                        value = wvar.value
                        if (wvar.kind == 0 and wvar.traces is None
                                and value is not None
                                and wvar.num_str is value):
                            delta = wvar.num
                            dstr = value
                if delta is None:
                    dstr = _word(interp, dword)
                    try:
                        delta = int(dstr)
                    except ValueError:
                        result = interp.call(["incr", name, dstr], line)
                        _fill_op_cell(interp, cell, name)
                        continue
            if cell[2] is frames[-1] and cell[1] == interp.var_epoch:
                var = cell[3]
                value = var.value
                if var.kind == 0 and var.traces is None and value is not None:
                    if var.num_str is value:
                        current = var.num
                    else:
                        try:
                            current = int(value)
                        except ValueError:
                            current = None
                    if current is not None:
                        count = interp.cmd_count + 1
                        interp.cmd_count = count
                        if count >= interp._next_check:
                            interp._check_limits(count)
                        new = current + delta
                        text = str(new)
                        var.value = text
                        var.num = new
                        var.num_str = text
                        result = text
                        continue
            if dstr is None:
                argv = ["incr", name]
            else:
                argv = ["incr", name, dstr]
            result = interp.call(argv, line)
            _fill_op_cell(interp, cell, name)
            continue

        if kind == OP_SET:
            _k, cell, name, word, line, fallback, func = op
            if cell[0] != interp.cmds_generation:
                if interp.commands.get("set") is func:
                    cell[0] = interp.cmds_generation
                else:
                    interp._vm_stats["deopts"] += 1
                    result = fallback.execute(interp)
                    continue
            if word[0] == W_CONST:
                value = word[1]
                num = word[2]
            else:
                value = _word(interp, word)
                if value is interp._vm_num_str:
                    num = interp._vm_num
                else:
                    num = None
            if cell[2] is frames[-1] and cell[1] == interp.var_epoch:
                var = cell[3]
                if var.kind == 0 and var.traces is None:
                    count = interp.cmd_count + 1
                    interp.cmd_count = count
                    if count >= interp._next_check:
                        interp._check_limits(count)
                    var.value = value
                    if num is not None:
                        var.num = num
                        var.num_str = value
                    result = value
                    continue
            result = interp.call(["set", name, value], line)
            _fill_op_cell(interp, cell, name)
            continue

        if kind == OP_SETDEAD:
            # An OP_SET whose constant value the optimizer proved dead
            # (the adjacent next op definitely overwrites it with no
            # intervening reader).  Identical to OP_SET except the
            # fast path skips the memory write; every slow-path
            # condition -- traces added after compilation, links,
            # arrays -- performs the real assignment so the observable
            # trace sequence is unchanged.
            _k, cell, name, word, line, fallback, func = op
            if cell[0] != interp.cmds_generation:
                if interp.commands.get("set") is func:
                    cell[0] = interp.cmds_generation
                else:
                    interp._vm_stats["deopts"] += 1
                    result = fallback.execute(interp)
                    continue
            value = word[1]  # always W_CONST
            if cell[2] is frames[-1] and cell[1] == interp.var_epoch:
                var = cell[3]
                if var.kind == 0 and var.traces is None:
                    count = interp.cmd_count + 1
                    interp.cmd_count = count
                    if count >= interp._next_check:
                        interp._check_limits(count)
                    result = value
                    continue
            result = interp.call(["set", name, value], line)
            _fill_op_cell(interp, cell, name)
            continue

        if kind == OP_SETRD:
            _k, cell, name, line, fallback, func = op
            if cell[0] != interp.cmds_generation:
                if interp.commands.get("set") is func:
                    cell[0] = interp.cmds_generation
                else:
                    interp._vm_stats["deopts"] += 1
                    result = fallback.execute(interp)
                    continue
            if cell[2] is frames[-1] and cell[1] == interp.var_epoch:
                var = cell[3]
                value = var.value
                if var.kind == 0 and var.traces is None and value is not None:
                    count = interp.cmd_count + 1
                    interp.cmd_count = count
                    if count >= interp._next_check:
                        interp._check_limits(count)
                    result = value
                    continue
            result = interp.call(["set", name], line)
            _fill_op_cell(interp, cell, name)
            continue

        if kind == OP_EXPR:
            _k, cell, prog, text, line, fallback, func = op
            if cell[0] != interp.cmds_generation:
                if interp.commands.get("expr") is func:
                    cell[0] = interp.cmds_generation
                else:
                    interp._vm_stats["deopts"] += 1
                    result = fallback.execute(interp)
                    continue
            count = interp.cmd_count + 1
            interp.cmd_count = count
            if count >= interp._next_check:
                interp._check_limits(count)
            try:
                value = run_expr(interp, prog)
                if type(value) is int:
                    # Hand the integer to a downstream ``set`` without a
                    # reparse: the consumer trusts the pair only while
                    # ``_vm_num_str`` is (identity) the string it holds,
                    # so no invalidation is ever needed.
                    result = str(value)
                    interp._vm_num = value
                    interp._vm_num_str = result
                else:
                    result = format_number(value)
            except TclError as err:
                interp._record_error_frame_text(err, text, line)
                raise
            except (TclReturn, TclBreak, TclContinue):
                raise
            except RecursionError:
                raise
            except Exception as exc:
                raise _firewall(interp, "expr", exc, text, line) from None
            continue

        if kind == OP_CONSTEXPR:
            # An OP_EXPR whose program folded to one constant: same
            # binding check, same single work unit (the bump sits
            # outside any frame-text recording, exactly like OP_EXPR's
            # pre-try bump), precomputed result.  The stored string's
            # identity is stable, so the integer handoff to a
            # consuming ``set`` keeps working across executions.
            _k, cell, value, num, text, line, fallback, func = op
            if cell[0] != interp.cmds_generation:
                if interp.commands.get("expr") is func:
                    cell[0] = interp.cmds_generation
                else:
                    interp._vm_stats["deopts"] += 1
                    result = fallback.execute(interp)
                    continue
            count = interp.cmd_count + 1
            interp.cmd_count = count
            if count >= interp._next_check:
                interp._check_limits(count)
            result = value
            if num is not None:
                interp._vm_num = num
                interp._vm_num_str = value
            continue

        if kind == OP_IF:
            _k, cell, clauses, else_code, text, line, fallback, func = op
            if cell[0] != interp.cmds_generation:
                if interp.commands.get("if") is func:
                    cell[0] = interp.cmds_generation
                else:
                    interp._vm_stats["deopts"] += 1
                    result = fallback.execute(interp)
                    continue
            count = interp.cmd_count + 1
            interp.cmd_count = count
            if count >= interp._next_check:
                interp._check_limits(count)
            try:
                result = ""
                for cond, body in clauses:
                    if _cond(interp, cond):
                        result = _run_block(interp, body)
                        break
                else:
                    if else_code is not None:
                        result = _run_block(interp, else_code)
            except TclError as err:
                interp._record_error_frame_text(err, text, line)
                raise
            except (TclReturn, TclBreak, TclContinue):
                raise
            except RecursionError:
                raise
            except Exception as exc:
                raise _firewall(interp, "if", exc, text, line) from None
            continue

        if kind == OP_WHILE:
            _k, cell, cond, body, text, line, fallback, func = op
            if cell[0] != interp.cmds_generation:
                if interp.commands.get("while") is func:
                    cell[0] = interp.cmds_generation
                else:
                    interp._vm_stats["deopts"] += 1
                    result = fallback.execute(interp)
                    continue
            count = interp.cmd_count + 1
            interp.cmd_count = count
            if count >= interp._next_check:
                interp._check_limits(count)
            try:
                # Hoisted loop state for the inlined _run_block below
                # (neither can change during one loop execution).
                nesting1 = interp._nesting
                rlimit = interp.recursion_limit
                body_source = body.source
                while _cond(interp, cond):
                    # Inlined _run_block for the loop body.
                    if nesting1 >= rlimit:
                        raise interp._recursion_error()
                    count = interp.cmd_count + 1
                    interp.cmd_count = count
                    if count >= interp._next_check:
                        interp._check_limits(count)
                    if nesting1 >= interp._peak_nesting:
                        interp._peak_nesting = nesting1 + 1
                    interp._nesting = nesting1 + 1
                    try:
                        run(interp, body)
                    except TclBreak:
                        break
                    except TclContinue:
                        continue
                    except TclError as err:
                        interp._start_errorinfo(err, body_source)
                        raise
                    except RecursionError:
                        raise interp._recursion_error()
                    finally:
                        interp._nesting = nesting1
                result = ""
            except TclError as err:
                interp._record_error_frame_text(err, text, line)
                raise
            except (TclReturn, TclBreak, TclContinue):
                raise
            except RecursionError:
                raise
            except Exception as exc:
                raise _firewall(interp, "while", exc, text, line) from None
            continue

        if kind == OP_FOR:
            _k, cell, start, cond, nxt, body, fuse, text, line, \
                fallback, func = op
            if cell[0] != interp.cmds_generation:
                if interp.commands.get("for") is func:
                    cell[0] = interp.cmds_generation
                else:
                    interp._vm_stats["deopts"] += 1
                    result = fallback.execute(interp)
                    continue
            count = interp.cmd_count + 1
            interp.cmd_count = count
            if count >= interp._next_check:
                interp._check_limits(count)
            try:
                nesting1 = interp._nesting
                rlimit = interp.recursion_limit
                body_source = body.source
                next_source = nxt.source
                # Start block (cmd_for evaluates it as a full script).
                if nesting1 >= rlimit:
                    raise interp._recursion_error()
                count = interp.cmd_count + 1
                interp.cmd_count = count
                if count >= interp._next_check:
                    interp._check_limits(count)
                if nesting1 >= interp._peak_nesting:
                    interp._peak_nesting = nesting1 + 1
                interp._nesting = nesting1 + 1
                try:
                    run(interp, start)
                except TclError as err:
                    interp._start_errorinfo(err, start.source)
                    raise
                except RecursionError:
                    raise interp._recursion_error()
                finally:
                    interp._nesting = nesting1

                done = False
                if fuse is not None:
                    done = _for_fused(interp, op, nesting1, rlimit)

                if not done:
                    while _cond(interp, cond):
                        # Body block.
                        if nesting1 >= rlimit:
                            raise interp._recursion_error()
                        count = interp.cmd_count + 1
                        interp.cmd_count = count
                        if count >= interp._next_check:
                            interp._check_limits(count)
                        if nesting1 >= interp._peak_nesting:
                            interp._peak_nesting = nesting1 + 1
                        interp._nesting = nesting1 + 1
                        try:
                            run(interp, body)
                        except TclBreak:
                            break
                        except TclContinue:
                            pass  # cmd_for still runs the next block
                        except TclError as err:
                            interp._start_errorinfo(err, body_source)
                            raise
                        except RecursionError:
                            raise interp._recursion_error()
                        finally:
                            interp._nesting = nesting1
                        # Next block: no break/continue handling, as in
                        # cmd_for where nxt() runs outside the catch.
                        if nesting1 >= rlimit:
                            raise interp._recursion_error()
                        count = interp.cmd_count + 1
                        interp.cmd_count = count
                        if count >= interp._next_check:
                            interp._check_limits(count)
                        if nesting1 >= interp._peak_nesting:
                            interp._peak_nesting = nesting1 + 1
                        interp._nesting = nesting1 + 1
                        try:
                            run(interp, nxt)
                        except TclError as err:
                            interp._start_errorinfo(err, next_source)
                            raise
                        except RecursionError:
                            raise interp._recursion_error()
                        finally:
                            interp._nesting = nesting1
                result = ""
            except TclError as err:
                interp._record_error_frame_text(err, text, line)
                raise
            except (TclReturn, TclBreak, TclContinue):
                raise
            except RecursionError:
                raise
            except Exception as exc:
                raise _firewall(interp, "for", exc, text, line) from None
            continue

        if kind == OP_FOREACH:
            _k, cell, name, items, list_word, body, text, line, \
                fallback, func = op
            if cell[0] != interp.cmds_generation:
                if interp.commands.get("foreach") is func:
                    cell[0] = interp.cmds_generation
                else:
                    interp._vm_stats["deopts"] += 1
                    result = fallback.execute(interp)
                    continue
            if items is None:
                list_value = _word(interp, list_word)
            else:
                list_value = None
            count = interp.cmd_count + 1
            interp.cmd_count = count
            if count >= interp._next_check:
                interp._check_limits(count)
            try:
                if items is None:
                    items = string_to_list(list_value)
                nesting1 = interp._nesting
                rlimit = interp.recursion_limit
                body_source = body.source
                epoch = interp.var_epoch
                for item in items:
                    # Loop-variable write: cached scalar slot or the
                    # full set_var (traces, arrays, links).
                    if cell[2] is frames[-1] and cell[1] == epoch:
                        var = cell[3]
                        if var.kind == 0 and var.traces is None:
                            var.value = item
                        else:
                            interp.set_var(name, item)
                    else:
                        interp.set_var(name, item)
                        _fill_op_cell(interp, cell, name)
                        epoch = interp.var_epoch
                    if nesting1 >= rlimit:
                        raise interp._recursion_error()
                    count = interp.cmd_count + 1
                    interp.cmd_count = count
                    if count >= interp._next_check:
                        interp._check_limits(count)
                    if nesting1 >= interp._peak_nesting:
                        interp._peak_nesting = nesting1 + 1
                    interp._nesting = nesting1 + 1
                    try:
                        run(interp, body)
                    except TclBreak:
                        break
                    except TclContinue:
                        continue
                    except TclError as err:
                        interp._start_errorinfo(err, body_source)
                        raise
                    except RecursionError:
                        raise interp._recursion_error()
                    finally:
                        interp._nesting = nesting1
                    epoch = interp.var_epoch
                result = ""
            except TclError as err:
                if text is None:
                    # Dynamic list word: the tree walker records the
                    # substituted argv, so build the frame text now.
                    text = " ".join(
                        ("foreach", name, list_value, body.source))[:150]
                interp._record_error_frame_text(err, text, line)
                raise
            except (TclReturn, TclBreak, TclContinue):
                raise
            except RecursionError:
                raise
            except Exception as exc:
                if text is None:
                    text = " ".join(
                        ("foreach", name, list_value, body.source))[:150]
                raise _firewall(interp, "foreach", exc, text, line) from None
            continue

        raise TclError(  # pragma: no cover - emitter never produces these
            "internal vm error: bad opcode %r" % (kind,))
    return result


def _for_fused(interp, op, nesting1, rlimit):
    """The fused integer-range ``for`` loop.

    Preconditions (checked by the emitter and revalidated here): the
    loop variable is a plain scalar written by the start block, the
    condition is ``$var <cmp> intconst``, and the next block is a
    single constant-delta ``incr`` of the same variable.  The
    per-iteration work collapses to one shadow compare, the body, and
    one virtual ``incr`` -- which still pays the exact work units the
    tree-walker would (the next-block nested eval entry, then the incr
    dispatch), so ``info cmdcount`` and budget trip points are
    engine-independent.

    Returns True when the loop ran to completion (condition went
    false or the body broke); False means "deopt": fall back to the
    generic loop, which re-evaluates the condition from current state.
    """
    fuse = op[6]
    body = op[5]
    body_source = body.source
    next_source = op[4].source
    cell = fuse[0]
    cmp = fuse[2]
    const = fuse[3]
    delta = fuse[4]
    incr_func = fuse[5]
    gen = interp.cmds_generation
    if interp.commands.get("incr") is not incr_func:
        return False
    frames = interp.frames
    epoch = interp.var_epoch
    # Prime the condition's variable cell: on a cold cache (first
    # execution of a freshly compiled loop) the cell is only filled by
    # the generic path, which would deopt the fused loop until the
    # *second* eval of the script.  The start block has just written
    # the loop variable, so the fill always succeeds here.
    if not (cell[1] is frames[-1] and cell[0] == epoch):
        _fill_word_cell(interp, cell, fuse[1])
    while True:
        if interp.cmds_generation != gen or interp.var_epoch != epoch:
            return False
        if not (cell[1] is frames[-1] and cell[0] == epoch):
            return False
        var = cell[2]
        value = var.value
        if (var.kind != 0 or var.traces is not None or value is None):
            return False
        if var.num_str is value:
            current = var.num
        else:
            try:
                current = int(value)
            except ValueError:
                return False
        if cmp == CMP_LT:
            more = current < const
        elif cmp == CMP_GT:
            more = current > const
        elif cmp == CMP_LE:
            more = current <= const
        elif cmp == CMP_GE:
            more = current >= const
        elif cmp == CMP_EQ:
            more = current == const
        else:
            more = current != const
        if not more:
            return True
        if nesting1 >= rlimit:
            raise interp._recursion_error()
        count = interp.cmd_count + 1
        interp.cmd_count = count
        if count >= interp._next_check:
            interp._check_limits(count)
        if nesting1 >= interp._peak_nesting:
            interp._peak_nesting = nesting1 + 1
        interp._nesting = nesting1 + 1
        try:
            run(interp, body)
        except TclBreak:
            return True
        except TclContinue:
            pass  # the virtual incr below is cmd_for's nxt()
        except TclError as err:
            interp._start_errorinfo(err, body_source)
            raise
        except RecursionError:
            raise interp._recursion_error()
        finally:
            interp._nesting = nesting1
        # Virtual next block: revalidate, then perform the incr with
        # the same observable effects as dispatching ``incr``.
        if interp.cmds_generation != gen or interp.var_epoch != epoch:
            return False
        if not (cell[1] is frames[-1] and cell[0] == epoch):
            return False
        var = cell[2]
        value = var.value
        if var.kind != 0 or var.traces is not None or value is None:
            return False
        if var.num_str is value:
            current = var.num
        else:
            try:
                current = int(value)
            except ValueError:
                return False
        # Work units of the skipped next block, in dispatch order: the
        # nested eval entry, then the incr command itself.
        count = interp.cmd_count + 1
        interp.cmd_count = count
        if count >= interp._next_check:
            interp._check_limits(count)
        count = interp.cmd_count + 1
        interp.cmd_count = count
        if count >= interp._next_check:
            try:
                interp._check_limits(count)
            except TclError as err:
                # The tree-walker's trip on this unit fires inside the
                # nested eval of the next script, which seeds errorInfo
                # with its excerpt; mirror that exactly.
                interp._start_errorinfo(err, next_source)
                raise
        new = current + delta
        text = str(new)
        var.value = text
        var.num = new
        var.num_str = text


# ----------------------------------------------------------------------
# ``info bytecode``

def cmd_info_bytecode(interp, argv):
    """The ``info bytecode`` extension (registered via info_extensions).

    ``info bytecode`` reports the bytecode LRU plus VM counters;
    ``info bytecode disassemble <script>`` compiles the script (without
    touching the cache) and returns a listing.
    """
    if len(argv) == 4 and argv[2] == "disassemble":
        from repro.tcl import compile as _compile

        parsed = interp.parse_cache.get(argv[3])
        code = _compile.compile_script_bytecode(parsed, argv[3], interp)
        return disassemble(code)
    if len(argv) != 2:
        raise TclError(
            'wrong # args: should be "info bytecode ?disassemble script?"')
    stats = interp.bytecode_cache.stats()
    vm_stats = interp._vm_stats
    return list_to_string([
        "engine", interp.engine,
        "hits", str(stats["hits"]),
        "misses", str(stats["misses"]),
        "evictions", str(stats["evictions"]),
        "size", str(stats["size"]),
        "maxsize", str(stats["maxsize"]),
        "hitrate", "%.4f" % stats["hit_rate"],
        "scripts", str(vm_stats["scripts"]),
        "inlineOps", str(vm_stats["inline_ops"]),
        "genericOps", str(vm_stats["generic_ops"]),
        "deopts", str(vm_stats["deopts"]),
        "optimize", "1" if interp.optimize else "0",
        "folded", str(vm_stats["folded"]),
        "elided", str(vm_stats["elided"]),
    ])
