"""Core Tcl commands: variables, control flow, procedures, errors."""

from repro.tcl.errors import (
    TclBreak,
    TclContinue,
    TclError,
    TclLimitError,
    TclReturn,
)
from repro.tcl.interp import split_varname
from repro.tcl.lists import list_to_string, string_to_list


def _wrong_args(usage):
    raise TclError('wrong # args: should be "%s"' % usage)


def cmd_set(interp, argv):
    if len(argv) == 2:
        return interp.get_var(argv[1])
    if len(argv) == 3:
        return interp.set_var(argv[1], argv[2])
    _wrong_args("set varName ?newValue?")


def cmd_unset(interp, argv):
    if len(argv) < 2:
        _wrong_args("unset varName ?varName ...?")
    for name in argv[1:]:
        interp.unset_var(name)
    return ""


def cmd_incr(interp, argv):
    if len(argv) not in (2, 3):
        _wrong_args("incr varName ?increment?")
    name = argv[1]
    try:
        current = int(interp.get_var(name))
    except ValueError:
        raise TclError(
            'expected integer but got "%s"' % interp.get_var(name)
        )
    amount = 1
    if len(argv) == 3:
        try:
            amount = int(argv[2])
        except ValueError:
            raise TclError('expected integer but got "%s"' % argv[2])
    return interp.set_var(name, str(current + amount))


def cmd_append(interp, argv):
    if len(argv) < 2:
        _wrong_args("append varName ?value value ...?")
    name = argv[1]
    value = interp.get_var(name) if interp.var_exists(name) else ""
    value += "".join(argv[2:])
    return interp.set_var(name, value)


def cmd_proc(interp, argv):
    if len(argv) != 4:
        _wrong_args("proc name args body")
    name, args_spec, body = argv[1], argv[2], argv[3]
    formals = []
    for element in string_to_list(args_spec):
        pieces = string_to_list(element)
        if len(pieces) == 1:
            formals.append((pieces[0], None))
        elif len(pieces) == 2:
            formals.append((pieces[0], pieces[1]))
        else:
            raise TclError(
                'too many fields in argument specifier "%s"' % element
            )
    interp.define_proc(name, formals, body)
    return ""


def cmd_return(interp, argv):
    if len(argv) > 2 and argv[1] == "-code":
        # Minimal -code support: error/return/break/continue/ok
        code = argv[2]
        value = argv[3] if len(argv) > 3 else ""
        if code == "error":
            raise TclError(value)
        if code == "break":
            raise TclBreak()
        if code == "continue":
            raise TclContinue()
        raise TclReturn(value)
    raise TclReturn(argv[1] if len(argv) > 1 else "")


def cmd_global(interp, argv):
    if len(argv) < 2:
        _wrong_args("global varName ?varName ...?")
    if interp.current_frame is not interp.global_frame:
        for name in argv[1:]:
            interp.link_var(name, interp.global_frame, name)
    return ""


def cmd_upvar(interp, argv):
    args = argv[1:]
    if not args:
        _wrong_args("upvar ?level? otherVar localVar ?otherVar localVar ...?")
    if args[0].startswith("#") or args[0].isdigit():
        level = args[0]
        args = args[1:]
    else:
        level = "1"
    if not args or len(args) % 2 != 0:
        _wrong_args("upvar ?level? otherVar localVar ?otherVar localVar ...?")
    target = interp.frame_at_level(level)
    for i in range(0, len(args), 2):
        other, local = args[i], args[i + 1]
        interp.link_var(local, target, other)
    return ""


def cmd_uplevel(interp, argv):
    args = argv[1:]
    if not args:
        _wrong_args("uplevel ?level? command ?arg ...?")
    if args[0].startswith("#") or args[0].isdigit():
        level = args[0]
        args = args[1:]
    else:
        level = "1"
    if not args:
        _wrong_args("uplevel ?level? command ?arg ...?")
    target = interp.frame_at_level(level)
    script = args[0] if len(args) == 1 else " ".join(args)
    saved = interp.frames
    index = interp.frames.index(target)
    interp.frames = interp.frames[: index + 1]
    try:
        return interp.eval(script)
    finally:
        interp.frames = saved


def cmd_catch(interp, argv):
    if len(argv) not in (2, 3):
        _wrong_args("catch command ?varName?")
    code = 0
    result = ""
    try:
        result = interp.eval(argv[1])
    except TclLimitError:
        # Resource-limit trips are not catchable: a hostile
        # ``catch {while 1 {}}`` must not defeat the watchdog.  The
        # error keeps unwinding to the top-level eval boundary.
        raise
    except TclError as err:
        code, result = 1, err.result
    except TclReturn as ret:
        code, result = 2, ret.result
    except TclBreak:
        code = 3
    except TclContinue:
        code = 4
    if len(argv) == 3:
        interp.set_var(argv[2], result)
    return str(code)


def cmd_error(interp, argv):
    """``error message ?errorInfo? ?errorCode?`` (Tcl semantics).

    A non-empty *errorInfo* argument seeds the stack trace: it is used
    as the initial errorInfo and the interpreter skips adding the
    ``while executing`` frame for the ``error`` command itself (the
    caller is re-raising a previously reported error).  *errorCode*
    travels on the exception and lands in the ``errorCode`` global
    when the error is recorded -- not eagerly, and never from the
    wrong argument.
    """
    if len(argv) < 2 or len(argv) > 4:
        _wrong_args("error message ?errorInfo? ?errorCode?")
    err = TclError(argv[1])
    if len(argv) > 2 and argv[2]:
        err.errorinfo = argv[2]
        err.info_started = True
        err.skip_frame = True
        err.frames = 1
    if len(argv) > 3:
        err.errorcode = argv[3]
    raise err


def cmd_eval(interp, argv):
    if len(argv) < 2:
        _wrong_args("eval arg ?arg ...?")
    script = argv[1] if len(argv) == 2 else " ".join(argv[1:])
    return interp.eval(script)


def cmd_expr(interp, argv):
    if len(argv) < 2:
        _wrong_args("expr arg ?arg ...?")
    text = argv[1] if len(argv) == 2 else " ".join(argv[1:])
    return interp.eval_expr_string(text)


def cmd_if(interp, argv):
    i = 1
    n = len(argv)
    while True:
        if i >= n:
            _wrong_args("if condition ?then? body ?elseif ...? ?else? ?body?")
        condition = argv[i]
        i += 1
        if i < n and argv[i] == "then":
            i += 1
        if i >= n:
            raise TclError(
                'wrong # args: no script following "%s" argument' % condition
            )
        body = argv[i]
        i += 1
        if interp.eval_expr_truth(condition):
            return interp.eval(body)
        if i >= n:
            return ""
        if argv[i] == "elseif":
            i += 1
            continue
        if argv[i] == "else":
            i += 1
        if i >= n:
            raise TclError("wrong # args: no script following \"else\" argument")
        if i != n - 1:
            raise TclError("wrong # args: extra words after \"else\" clause in \"if\" command")
        return interp.eval(argv[i])


def cmd_while(interp, argv):
    if len(argv) != 3:
        _wrong_args("while test command")
    body = interp.script_evaluator(argv[2])
    test = interp.compile_expr_truth(argv[1])
    while test():
        try:
            body()
        except TclBreak:
            break
        except TclContinue:
            continue
    return ""


def cmd_for(interp, argv):
    if len(argv) != 5:
        _wrong_args("for start test next command")
    start = argv[1]
    test = interp.compile_expr_truth(argv[2])
    nxt = interp.script_evaluator(argv[3])
    body = interp.script_evaluator(argv[4])
    interp.eval(start)
    while test():
        try:
            body()
        except TclBreak:
            break
        except TclContinue:
            pass
        nxt()
    return ""


def cmd_foreach(interp, argv):
    if len(argv) != 4:
        _wrong_args("foreach varName list command")
    name, items = argv[1], string_to_list(argv[2])
    body = interp.script_evaluator(argv[3])
    for item in items:
        interp.set_var(name, item)
        try:
            body()
        except TclBreak:
            break
        except TclContinue:
            continue
    return ""


def cmd_break(interp, argv):
    raise TclBreak()


def cmd_continue(interp, argv):
    raise TclContinue()


def _match_glob(pattern, text):
    from repro.tcl.cmds_string import glob_match

    return glob_match(pattern, text)


def cmd_switch(interp, argv):
    import re

    args = argv[1:]
    mode = "exact"
    while args and args[0].startswith("-"):
        flag = args[0]
        if flag == "--":
            args = args[1:]
            break
        if flag == "-exact":
            mode = "exact"
        elif flag == "-glob":
            mode = "glob"
        elif flag == "-regexp":
            mode = "regexp"
        else:
            raise TclError(
                'bad option "%s": should be -exact, -glob, -regexp, or --' % flag
            )
        args = args[1:]
    if len(args) < 2:
        _wrong_args("switch ?switches? string pattern body ... ?default body?")
    string = args[0]
    if len(args) == 2:
        pairs = string_to_list(args[1])
    else:
        pairs = args[1:]
    if len(pairs) % 2 != 0:
        raise TclError("extra switch pattern with no body")
    matched = None
    for i in range(0, len(pairs), 2):
        pattern, body = pairs[i], pairs[i + 1]
        hit = False
        if matched is None:
            if pattern == "default" and i == len(pairs) - 2:
                hit = True
            elif mode == "exact":
                hit = pattern == string
            elif mode == "glob":
                hit = _match_glob(pattern, string)
            else:
                hit = re.search(pattern, string) is not None
        if matched is not None or hit:
            if body == "-":
                matched = True
                continue
            return interp.eval(body)
    return ""


def cmd_case(interp, argv):
    """Old-style ``case`` (Tcl 6), used by period scripts: glob matching."""
    args = argv[1:]
    if not args:
        _wrong_args("case string ?in? patList body ?patList body ...?")
    string = args[0]
    args = args[1:]
    if args and args[0] == "in":
        args = args[1:]
    if len(args) == 1:
        args = string_to_list(args[0])
    if len(args) % 2 != 0:
        raise TclError("extra case pattern with no body")
    default_body = None
    for i in range(0, len(args), 2):
        patterns, body = args[i], args[i + 1]
        if patterns == "default":
            default_body = body
            continue
        for pattern in string_to_list(patterns):
            if _match_glob(pattern, string):
                return interp.eval(body)
    if default_body is not None:
        return interp.eval(default_body)
    return ""


def cmd_source(interp, argv):
    if len(argv) != 2:
        _wrong_args("source fileName")
    try:
        with open(argv[1], "r") as handle:
            script = handle.read()
    except OSError as err:
        raise TclError('couldn\'t read file "%s": %s' % (argv[1], err.strerror))
    return interp.eval(script)


def cmd_time(interp, argv):
    if len(argv) not in (2, 3):
        _wrong_args("time command ?count?")
    count = 1
    if len(argv) == 3:
        try:
            count = int(argv[2])
        except ValueError:
            raise TclError('expected integer but got "%s"' % argv[2])
    micros = interp.time_script(argv[1], count)
    return "%d microseconds per iteration" % micros


def cmd_rename(interp, argv):
    if len(argv) != 3:
        _wrong_args("rename oldName newName")
    interp.rename(argv[1], argv[2])
    return ""


def cmd_puts(interp, argv):
    args = argv[1:]
    newline = True
    if args and args[0] == "-nonewline":
        newline = False
        args = args[1:]
    if args and args[0] in ("stdout", "stderr"):
        args = args[1:]
    if len(args) != 1:
        _wrong_args("puts ?-nonewline? ?fileId? string")
    interp.output(args[0] + ("\n" if newline else ""))
    return ""


def cmd_subst(interp, argv):
    """``subst``: run substitutions over a string without execution."""
    from repro.tcl import parser as _parser

    args = argv[1:]
    novars = nocommands = nobackslashes = False
    while args and args[0].startswith("-"):
        if args[0] == "-novariables":
            novars = True
        elif args[0] == "-nocommands":
            nocommands = True
        elif args[0] == "-nobackslashes":
            nobackslashes = True
        else:
            break
        args = args[1:]
    if len(args) != 1:
        _wrong_args("subst ?-nobackslashes? ?-nocommands? ?-novariables? string")
    text = args[0]
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and not nobackslashes:
            piece, i = _parser.backslash_char(text, i)
            out.append(piece)
        elif ch == "$" and not novars:
            part, nxt = _parser.parse_varsub(text, i)
            if part is None:
                out.append("$")
                i = nxt
            else:
                name, index_parts = part[1]
                index = (
                    interp._substitute_parts(index_parts)
                    if index_parts is not None
                    else None
                )
                out.append(interp.get_var(name, index))
                i = nxt
        elif ch == "[" and not nocommands:
            end = _parser._find_matching_bracket(text, i)
            out.append(interp.eval(text[i + 1 : end]))
            i = end + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def cmd_trace(interp, argv):
    """``trace variable|vdelete|vinfo`` -- variable traces (Tcl 7)."""
    if len(argv) < 3:
        _wrong_args("trace option [arg arg ...]")
    option = argv[1]
    if option in ("variable", "var"):
        if len(argv) != 5:
            _wrong_args("trace variable name ops command")
        name, ops, command = argv[2], argv[3], argv[4]
        if not ops or any(ch not in "rwu" for ch in ops):
            raise TclError(
                'bad operations "%s": should be one or more of rwu' % ops)
        interp.add_trace(name, ops, command)
        return ""
    if option == "vdelete":
        if len(argv) != 5:
            _wrong_args("trace vdelete name ops command")
        interp.remove_trace(argv[2], argv[3], argv[4])
        return ""
    if option == "vinfo":
        if len(argv) != 3:
            _wrong_args("trace vinfo name")
        return list_to_string(
            [list_to_string([ops, command])
             for ops, command in interp.trace_info(argv[2])])
    raise TclError(
        'bad option "%s": should be variable, vdelete, or vinfo' % option)


def cmd_unknown_default(interp, argv):
    raise TclError('invalid command name "%s"' % argv[1])


def register(interp):
    interp.register("set", cmd_set)
    interp.register("unset", cmd_unset)
    interp.register("incr", cmd_incr)
    interp.register("append", cmd_append)
    interp.register("proc", cmd_proc)
    interp.register("return", cmd_return)
    interp.register("global", cmd_global)
    interp.register("upvar", cmd_upvar)
    interp.register("uplevel", cmd_uplevel)
    interp.register("catch", cmd_catch)
    interp.register("error", cmd_error)
    interp.register("eval", cmd_eval)
    interp.register("expr", cmd_expr)
    interp.register("if", cmd_if)
    interp.register("while", cmd_while)
    interp.register("for", cmd_for)
    interp.register("foreach", cmd_foreach)
    interp.register("break", cmd_break)
    interp.register("continue", cmd_continue)
    interp.register("switch", cmd_switch)
    interp.register("case", cmd_case)
    interp.register("source", cmd_source)
    interp.register("time", cmd_time)
    interp.register("rename", cmd_rename)
    interp.register("puts", cmd_puts)
    interp.register("subst", cmd_subst)
    interp.register("trace", cmd_trace)
