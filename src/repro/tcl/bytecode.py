"""Bytecode representation for the Tcl VM.

The compile layer (``repro.tcl.compile``) lowers a parsed script to a
:class:`Code` object: a flat tuple of statement ops, each a plain tuple
whose first element is an opcode constant.  Control constructs carry
nested :class:`Code` blocks (mirroring Tcl's "everything is a script"
model), and ``expr`` conditions carry small stack programs.  The VM
proper lives in ``repro.tcl.vm``; this module only defines the shapes
plus a disassembler for ``info bytecode disassemble``.

Inline caches
-------------

Statement ops that bind a command name carry a *cell*: a 4-slot mutable
list ``[cmds_generation, var_epoch, frame, var]``.  Slot 0 caches the
interpreter's command-table generation at the last successful binding
check (rename/proc/hide bump it, forcing re-resolution).  Slots 1-3
cache a variable lookup: the cell is valid only while the interp-wide
``var_epoch`` matches (``unset``/``upvar`` bump it) *and* the cached
frame is identical to the current one.  Word-level variable loads use a
3-slot cell ``[var_epoch, frame, var]``.  Cells start with impossible
values (-1 generations, ``None`` frame) so the first execution always
takes the slow path and fills them.
"""

# ----------------------------------------------------------------------
# Statement opcodes

OP_CALL = 0      # (OP_CALL, plan_command)
OP_SET = 1       # (OP_SET, cell, name, word, line, fallback, func)
OP_SETRD = 2     # (OP_SETRD, cell, name, line, fallback, func)
OP_INCR = 3      # (OP_INCR, cell, name, dconst, dword, dlit, line, fb, func)
OP_IF = 4        # (OP_IF, cell, clauses, else_code, text, line, fb, func)
OP_WHILE = 5     # (OP_WHILE, cell, cond, body, text, line, fb, func)
OP_FOR = 6       # (OP_FOR, cell, start, cond, next, body, fuse, text,
                 #  line, fb, func)
OP_FOREACH = 7   # (OP_FOREACH, cell, name, items, word, body, text,
                 #  line, fb, func)
OP_EXPR = 8      # (OP_EXPR, cell, prog, text, line, fb, func)

# Optimizer-produced statement ops (repro.tcl.optimize).  Both carry
# the same binding-check cell and fallback as the op they replace, so
# ``rename`` deopts them identically.
OP_CONSTEXPR = 9  # (OP_CONSTEXPR, cell, result, num, text, line, fb, func)
OP_SETDEAD = 10   # (OP_SETDEAD, cell, name, word, line, fb, func)
                  # -- an OP_SET whose stored value is provably dead:
                  # the fast path pays set's work unit but skips the
                  # store; any slow-path condition (traces, links)
                  # performs the real assignment.

# ----------------------------------------------------------------------
# Word descriptors (argument positions of inlined statements)

W_CONST = 0      # (W_CONST, value, int_or_None)
W_VAR = 1        # (W_VAR, cell, name) -- plain scalar $name
W_VARIDX = 2     # (W_VARIDX, (name, index_parts))
W_CMD = 3        # (W_CMD, script) -- [script], compiled lazily at run
W_CODE = 4       # (W_CODE, code) -- [script] with embedded Code
W_PARTS = 5      # (W_PARTS, parts) -- general multi-part word
W_FOLDED = 6     # (W_FOLDED, code) -- [expr] block folded to a single
                 # OP_CONSTEXPR; the VM pays the block-entry and expr
                 # work units, then returns the precomputed result

# ----------------------------------------------------------------------
# Expr program opcodes (stack machine)

E_CONST = 0      # (E_CONST, value)
E_LOAD = 1       # (E_LOAD, cell, name) -- plain scalar $name
E_LOADX = 2      # (E_LOADX, (name, index_parts))
E_CMD = 3        # (E_CMD, script)
E_CODE = 4       # (E_CODE, code)
E_QUOTED = 5     # (E_QUOTED, pieces)
E_UNARY = 6      # (E_UNARY, op)
E_BIN = 7        # (E_BIN, op)
E_ADD = 8        # specialised binaries: int fast path, else _binary
E_SUB = 9
E_MUL = 10
E_LT = 11
E_GT = 12
E_LE = 13
E_GE = 14
E_EQ = 15
E_NE = 16
E_AND = 17       # (E_AND, target) -- pop; if false push 0, jump target
E_OR = 18        # (E_OR, target) -- pop; if true push 1, jump target
E_TRUTH = 19     # normalise top of stack to 1/0
E_JFALSE = 20    # (E_JFALSE, target) -- pop; jump if false
E_JUMP = 21      # (E_JUMP, target)
E_FUNC = 22      # (E_FUNC, name, argc)

# Fused condition compare codes (cond tuples carry (cell, name, cmp, const))
CMP_LT = 0
CMP_GT = 1
CMP_LE = 2
CMP_GE = 3
CMP_EQ = 4
CMP_NE = 5


def new_cell():
    """A fresh statement-op inline-cache cell (never valid initially)."""
    return [-1, -1, None, None]


def new_word_cell():
    """A fresh word-level variable cache cell."""
    return [-1, None, None]


class Code:
    """A compiled script: a tuple of statement ops plus provenance.

    ``execute`` is the common interface shared with the plan layer's
    ``CompiledScript`` so ``Interp.eval`` does not care which engine
    produced the object.
    """

    __slots__ = ("ops", "source", "inline_ops", "generic_ops")

    def __init__(self, ops, source="", inline_ops=0, generic_ops=0):
        self.ops = ops
        self.source = source
        self.inline_ops = inline_ops
        self.generic_ops = generic_ops

    def execute(self, interp):
        return _vm_run(interp, self)

    def __repr__(self):  # pragma: no cover - debugging aid
        return "Code(%d ops, %d inline/%d generic)" % (
            len(self.ops), self.inline_ops, self.generic_ops)


# ----------------------------------------------------------------------
# Disassembler

_OP_NAMES = {
    OP_CALL: "call",
    OP_SET: "set",
    OP_SETRD: "setrd",
    OP_INCR: "incr",
    OP_IF: "if",
    OP_WHILE: "while",
    OP_FOR: "for",
    OP_FOREACH: "foreach",
    OP_EXPR: "expr",
    OP_CONSTEXPR: "constexpr",
    OP_SETDEAD: "setdead",
}

_E_NAMES = {
    E_CONST: "const",
    E_LOAD: "load",
    E_LOADX: "loadx",
    E_CMD: "cmdsub",
    E_CODE: "cmdcode",
    E_QUOTED: "quoted",
    E_UNARY: "unary",
    E_BIN: "binop",
    E_ADD: "add",
    E_SUB: "sub",
    E_MUL: "mul",
    E_LT: "lt",
    E_GT: "gt",
    E_LE: "le",
    E_GE: "ge",
    E_EQ: "eq",
    E_NE: "ne",
    E_AND: "and",
    E_OR: "or",
    E_TRUTH: "truth",
    E_JFALSE: "jfalse",
    E_JUMP: "jump",
    E_FUNC: "func",
}


def _describe_word(word):
    kind = word[0]
    if kind == W_CONST:
        return "const %r" % (word[1],)
    if kind == W_VAR:
        return "$%s" % word[2]
    if kind == W_VARIDX:
        return "$%s(...)" % word[1][0]
    if kind == W_CMD:
        return "[%s]" % _clip(word[1])
    if kind == W_CODE:
        return "[<code %d ops>]" % len(word[1].ops)
    if kind == W_FOLDED:
        return "[<folded>] = %r" % (word[1].ops[0][2],)
    return "parts %d" % len(word[1])


def _clip(text, limit=40):
    text = text.replace("\n", "\\n")
    if len(text) > limit:
        return text[: limit - 3] + "..."
    return text


def disassemble_expr(prog, indent=0):
    pad = "    " * indent
    lines = []
    for i, op in enumerate(prog):
        kind = op[0]
        name = _E_NAMES.get(kind, "?%r" % (kind,))
        detail = ""
        if kind in (E_CONST, E_UNARY, E_BIN, E_CMD):
            detail = " %r" % (_clip(op[1]) if isinstance(op[1], str)
                              else op[1],)
        elif kind == E_LOAD:
            detail = " $%s" % op[2]
        elif kind == E_LOADX:
            detail = " $%s(...)" % op[1][0]
        elif kind in (E_AND, E_OR, E_JFALSE, E_JUMP):
            detail = " -> %d" % op[1]
        elif kind == E_FUNC:
            detail = " %s/%d" % (op[1], op[2])
        lines.append("%s%3d  %-7s%s" % (pad, i, name, detail))
        if kind == E_CODE:
            lines.append(disassemble(op[1], indent + 1))
    return "\n".join(lines)


def _describe_cond(cond, indent):
    prog, text = cond[0], cond[1]
    pad = "    " * indent
    if prog is None:
        return "%scond (uncompiled) %r" % (pad, _clip(text))
    marker = ""
    if cond[3] is not None:
        marker = " [fused]"
    elif cond[4] is not None:
        marker = " [const %s]" % ("true" if cond[4] else "false")
    header = "%scond %r%s" % (pad, _clip(text), marker)
    return header + "\n" + disassemble_expr(prog, indent + 1)


def disassemble(code, indent=0):
    """Human-readable listing of a :class:`Code` object."""
    pad = "    " * indent
    lines = []
    if indent == 0:
        lines.append("bytecode for %r (%d inline, %d generic)" % (
            _clip(code.source, 60), code.inline_ops, code.generic_ops))
    for i, op in enumerate(code.ops):
        kind = op[0]
        name = _OP_NAMES.get(kind, "?%r" % (kind,))
        if kind == OP_CALL:
            lines.append("%s%3d  call     %s" % (
                pad, i, _clip(getattr(op[1], "source", None)
                              or repr(op[1]), 60)))
        elif kind == OP_SET:
            lines.append("%s%3d  set      %s <- %s" % (
                pad, i, op[2], _describe_word(op[3])))
            if op[3][0] == W_CODE:
                lines.append(disassemble(op[3][1], indent + 1))
        elif kind == OP_SETRD:
            lines.append("%s%3d  set      %s (read)" % (pad, i, op[2]))
        elif kind == OP_INCR:
            if op[3] is not None:
                delta = str(op[3])
            elif op[4] is not None:
                delta = _describe_word(op[4])
            else:
                delta = "1"
            lines.append("%s%3d  incr     %s by %s" % (pad, i, op[2], delta))
        elif kind == OP_IF:
            lines.append("%s%3d  if" % (pad, i))
            for cond, body in op[2]:
                lines.append(_describe_cond(cond, indent + 1))
                lines.append(disassemble(body, indent + 2))
            if op[3] is not None:
                lines.append("%selse" % ("    " * (indent + 1)))
                lines.append(disassemble(op[3], indent + 2))
        elif kind == OP_WHILE:
            lines.append("%s%3d  while" % (pad, i))
            lines.append(_describe_cond(op[2], indent + 1))
            lines.append(disassemble(op[3], indent + 1))
        elif kind == OP_FOR:
            lines.append("%s%3d  for%s" % (
                pad, i, " [fused range]" if op[6] is not None else ""))
            lines.append(disassemble(op[2], indent + 1))
            lines.append(_describe_cond(op[3], indent + 1))
            lines.append(disassemble(op[4], indent + 1))
            lines.append(disassemble(op[5], indent + 1))
        elif kind == OP_FOREACH:
            lines.append("%s%3d  foreach  %s in %s" % (
                pad, i,
                op[2],
                "const list" if op[3] is not None
                else _describe_word(op[4])))
            lines.append(disassemble(op[5], indent + 1))
        elif kind == OP_EXPR:
            lines.append("%s%3d  expr     %r" % (pad, i, _clip(op[3])))
            lines.append(disassemble_expr(op[2], indent + 1))
        elif kind == OP_CONSTEXPR:
            lines.append("%s%3d  constexpr %r -> %r" % (
                pad, i, _clip(op[4]), op[2]))
        elif kind == OP_SETDEAD:
            lines.append("%s%3d  setdead  %s <- %s (store elided)" % (
                pad, i, op[2], _describe_word(op[3])))
        else:  # pragma: no cover - future opcodes
            lines.append("%s%3d  %s" % (pad, i, name))
    return "\n".join(lines)


# Imported at the bottom so ``vm`` can import this module's constants
# first; ``repro.tcl.__init__`` loads ``interp`` (hence this chain)
# before any direct import of ``vm`` can happen.
from repro.tcl.vm import run as _vm_run  # noqa: E402
