"""Tcl list syntax: conversion between Python lists and Tcl strings.

Tcl has exactly one data type -- the string -- and lists are strings in
a canonical quoting discipline.  Wafe leans on this heavily: resource
name lists, callback argument lists and the values handed to Tcl
associative arrays are all Tcl lists.  ``string_to_list`` implements the
splitting rules (braces group without substitution, double quotes group
with backslash processing) and ``list_to_string`` implements Tcl's
``Tcl_Merge`` quoting so that the round trip is loss-free.
"""

from repro.tcl.errors import TclError
from repro.tcl.parser import backslash_char

_WHITESPACE = " \t\n\r\f\v"


def string_to_list(text):
    """Split a Tcl list string into its elements (Python list of str)."""
    elements = []
    i = 0
    n = len(text)
    while i < n:
        while i < n and text[i] in _WHITESPACE:
            i += 1
        if i >= n:
            break
        ch = text[i]
        if ch == "{":
            elem, i = _parse_braced(text, i)
        elif ch == '"':
            elem, i = _parse_quoted(text, i)
        else:
            elem, i = _parse_bare(text, i)
        elements.append(elem)
    return elements


def _parse_braced(text, pos):
    depth = 0
    i = pos
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\":
            i += 2
            continue
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                if i + 1 < n and text[i + 1] not in _WHITESPACE:
                    raise TclError(
                        "list element in braces followed by \"%s\" instead of space"
                        % text[i + 1]
                    )
                return text[pos + 1 : i], i + 1
        i += 1
    raise TclError("unmatched open brace in list")


def _parse_quoted(text, pos):
    buf = []
    i = pos + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\":
            out, i = backslash_char(text, i)
            buf.append(out)
        elif ch == '"':
            if i + 1 < n and text[i + 1] not in _WHITESPACE:
                raise TclError(
                    "list element in quotes followed by \"%s\" instead of space"
                    % text[i + 1]
                )
            return "".join(buf), i + 1
        else:
            buf.append(ch)
            i += 1
    raise TclError("unmatched open quote in list")


def _parse_bare(text, pos):
    buf = []
    i = pos
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in _WHITESPACE:
            break
        if ch == "\\":
            out, i = backslash_char(text, i)
            buf.append(out)
        else:
            buf.append(ch)
            i += 1
    return "".join(buf), i


_NEEDS_QUOTING = frozenset(_WHITESPACE + "{}[]$\";\\")


def _braces_balanced(text):
    depth = 0
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\":
            i += 2
            continue
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                return False
        i += 1
    return depth == 0


def quote_element(element):
    """Quote a single string so it parses back as one list element."""
    if element == "":
        return "{}"
    if not any(ch in _NEEDS_QUOTING for ch in element) and element[0] != "#":
        return element
    if _braces_balanced(element) and not element.endswith("\\"):
        return "{" + element + "}"
    # Fall back to backslash quoting.
    out = []
    for ch in element:
        if ch in _NEEDS_QUOTING or ch == "#":
            if ch == "\n":
                out.append("\\n")
            else:
                out.append("\\" + ch)
        else:
            out.append(ch)
    return "".join(out)


def list_to_string(elements):
    """Join Python strings into a canonical Tcl list string."""
    return " ".join(quote_element(str(e)) for e in elements)
