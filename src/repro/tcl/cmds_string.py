"""String-family commands: string, format, scan, regexp, regsub."""

import re

from repro.tcl.errors import TclError
from repro.tcl.lists import list_to_string


#: ``string repeat`` refuses to build results larger than this (64 MiB):
#: part of the fault-containment layer -- a hostile backend must get a
#: Tcl error back, not drive the frontend into the OOM killer.
STRING_SIZE_LIMIT = 1 << 26


def _wrong_args(usage):
    raise TclError('wrong # args: should be "%s"' % usage)


def glob_match(pattern, text):
    """Tcl's ``string match`` glob rules: ``*``, ``?``, ``[...]``, ``\\x``."""
    return _glob(pattern, 0, text, 0)


def _glob(pat, pi, text, ti):
    np, nt = len(pat), len(text)
    while pi < np:
        ch = pat[pi]
        if ch == "*":
            while pi < np and pat[pi] == "*":
                pi += 1
            if pi == np:
                return True
            for start in range(ti, nt + 1):
                if _glob(pat, pi, text, start):
                    return True
            return False
        if ti >= nt:
            return False
        if ch == "?":
            pi += 1
            ti += 1
            continue
        if ch == "[":
            pi += 1
            matched = False
            negate = False
            if pi < np and pat[pi] == "^":
                negate = True
                pi += 1
            first = True
            while pi < np and (pat[pi] != "]" or first):
                first = False
                lo = pat[pi]
                if pi + 2 < np and pat[pi + 1] == "-" and pat[pi + 2] != "]":
                    hi = pat[pi + 2]
                    if lo <= text[ti] <= hi:
                        matched = True
                    pi += 3
                else:
                    if text[ti] == lo:
                        matched = True
                    pi += 1
            if pi < np and pat[pi] == "]":
                pi += 1
            if matched == negate:
                return False
            ti += 1
            continue
        if ch == "\\" and pi + 1 < np:
            pi += 1
            ch = pat[pi]
        if text[ti] != ch:
            return False
        pi += 1
        ti += 1
    return ti == nt


def cmd_string(interp, argv):
    if len(argv) < 3:
        _wrong_args("string option arg ?arg ...?")
    option = argv[1]
    if option == "compare":
        if len(argv) != 4:
            _wrong_args("string compare string1 string2")
        a, b = argv[2], argv[3]
        return "-1" if a < b else ("1" if a > b else "0")
    if option == "first":
        if len(argv) != 4:
            _wrong_args("string first string1 string2")
        return str(argv[3].find(argv[2]))
    if option == "last":
        if len(argv) != 4:
            _wrong_args("string last string1 string2")
        return str(argv[3].rfind(argv[2]))
    if option == "index":
        if len(argv) != 4:
            _wrong_args("string index string charIndex")
        text = argv[2]
        try:
            index = len(text) - 1 if argv[3] == "end" else int(argv[3])
        except ValueError:
            raise TclError('expected integer but got "%s"' % argv[3])
        if 0 <= index < len(text):
            return text[index]
        return ""
    if option == "length":
        if len(argv) != 3:
            _wrong_args("string length string")
        return str(len(argv[2]))
    if option == "repeat":
        if len(argv) != 4:
            _wrong_args("string repeat string count")
        try:
            count = int(argv[3])
        except ValueError:
            raise TclError('expected integer but got "%s"' % argv[3])
        if count <= 0:
            return ""
        # Containment: a runaway ``string repeat`` must fail as a Tcl
        # error before it can exhaust process memory.
        if len(argv[2]) * count > STRING_SIZE_LIMIT:
            raise TclError(
                "string size overflow: %d * %d exceeds %d bytes"
                % (len(argv[2]), count, STRING_SIZE_LIMIT))
        return argv[2] * count
    if option == "match":
        if len(argv) != 4:
            _wrong_args("string match pattern string")
        return "1" if glob_match(argv[2], argv[3]) else "0"
    if option == "range":
        if len(argv) != 5:
            _wrong_args("string range string first last")
        text = argv[2]
        first = 0 if argv[3] == "end" and not text else _str_index(argv[3], text)
        last = _str_index(argv[4], text)
        first = max(first, 0)
        last = min(last, len(text) - 1)
        if first > last:
            return ""
        return text[first : last + 1]
    if option == "tolower":
        return argv[2].lower()
    if option == "toupper":
        return argv[2].upper()
    if option in ("trim", "trimleft", "trimright"):
        chars = argv[3] if len(argv) > 3 else " \t\n\r\f\v"
        if option == "trim":
            return argv[2].strip(chars)
        if option == "trimleft":
            return argv[2].lstrip(chars)
        return argv[2].rstrip(chars)
    if option == "wordend":
        text = argv[2]
        index = int(argv[3])
        if index < 0:
            index = 0
        if index >= len(text):
            return str(len(text))
        end = index
        if _is_word_char(text[end]):
            while end < len(text) and _is_word_char(text[end]):
                end += 1
        else:
            end += 1
        return str(end)
    if option == "wordstart":
        text = argv[2]
        index = int(argv[3])
        if index >= len(text):
            index = len(text) - 1
        if index < 0:
            return "0"
        start = index
        if _is_word_char(text[start]):
            while start > 0 and _is_word_char(text[start - 1]):
                start -= 1
        return str(start)
    raise TclError(
        'bad option "%s": should be compare, first, index, last, length, '
        "match, range, repeat, tolower, toupper, trim, trimleft, "
        "trimright, wordend, or wordstart" % option
    )


def _is_word_char(ch):
    return ch.isalnum() or ch == "_"


def _str_index(text, string):
    if text == "end":
        return len(string) - 1
    try:
        return int(text)
    except ValueError:
        raise TclError('expected integer but got "%s"' % text)


_FORMAT_SPEC = re.compile(r"%(-?[0 +#]*)(\*|\d+)?(?:\.(\*|\d+))?(h|l)?([diouxXcsfeEgG%])")


def cmd_format(interp, argv):
    if len(argv) < 2:
        _wrong_args("format formatString ?arg arg ...?")
    template = argv[1]
    args = list(argv[2:])
    out = []
    pos = 0
    arg_index = 0

    def next_arg():
        nonlocal arg_index
        if arg_index >= len(args):
            raise TclError("not enough arguments for all format specifiers")
        value = args[arg_index]
        arg_index += 1
        return value

    while pos < len(template):
        ch = template[pos]
        if ch != "%":
            out.append(ch)
            pos += 1
            continue
        match = _FORMAT_SPEC.match(template, pos)
        if match is None:
            raise TclError('bad field specifier "%s"' % template[pos : pos + 2])
        flags, width, precision, _size, conv = match.groups()
        pos = match.end()
        if conv == "%":
            out.append("%")
            continue
        if width == "*":
            width = next_arg()
        if precision == "*":
            precision = next_arg()
        spec = "%" + (flags or "") + (width or "")
        if precision is not None:
            spec += "." + precision
        if conv in "diouxX":
            spec += conv if conv != "i" else "d"
            raw = next_arg()
            try:
                value = int(raw.strip(), 0) if isinstance(raw, str) else int(raw)
            except ValueError:
                try:
                    value = int(float(raw))
                except ValueError:
                    raise TclError('expected integer but got "%s"' % raw)
            if conv == "u" :
                spec = spec[:-1] + "d"
                value = value & 0xFFFFFFFF if value < 0 else value
            out.append(spec % value)
        elif conv == "c":
            raw = next_arg()
            try:
                out.append((spec + "s") % chr(int(raw)))
            except ValueError:
                raise TclError('expected integer but got "%s"' % raw)
        elif conv == "s":
            out.append((spec + "s") % next_arg())
        else:  # f e E g G
            raw = next_arg()
            try:
                value = float(raw)
            except ValueError:
                raise TclError('expected floating-point number but got "%s"' % raw)
            out.append((spec + conv) % value)
    return "".join(out)


def cmd_scan(interp, argv):
    """A useful subset of ``scan``: %d %x %o %c %s %f %e %g, %*, widths."""
    if len(argv) < 3:
        _wrong_args("scan string formatString ?varName varName ...?")
    string, template = argv[1], argv[2]
    var_names = argv[3:]
    si = 0
    fi = 0
    assigned = 0
    var_i = 0
    n, fn = len(string), len(template)
    while fi < fn:
        fc = template[fi]
        if fc.isspace():
            while si < n and string[si].isspace():
                si += 1
            fi += 1
            continue
        if fc != "%":
            if si < n and string[si] == fc:
                si += 1
                fi += 1
                continue
            break
        fi += 1
        suppress = False
        if fi < fn and template[fi] == "*":
            suppress = True
            fi += 1
        width = 0
        while fi < fn and template[fi].isdigit():
            width = width * 10 + int(template[fi])
            fi += 1
        if fi >= fn:
            raise TclError('bad scan conversion character ""')
        conv = template[fi]
        fi += 1
        if conv != "c":
            while si < n and string[si].isspace():
                si += 1
        if si >= n and conv != "c":
            break
        limit = n if width == 0 else min(n, si + width)
        if conv in "dioux":
            j = si
            if j < limit and string[j] in "+-":
                j += 1
            digits = "0123456789"
            base = 10
            if conv == "o":
                digits, base = "01234567", 8
            elif conv == "x":
                digits, base = "0123456789abcdefABCDEF", 16
            start_digits = j
            while j < limit and string[j] in digits:
                j += 1
            if j == start_digits:
                break
            value = int(string[si:j], base)
            si = j
            if not suppress:
                _scan_assign(interp, var_names, var_i, str(value))
                var_i += 1
                assigned += 1
        elif conv in "fge":
            match = re.match(r"[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?", string[si:limit])
            if match is None:
                break
            value = float(match.group(0))
            si += match.end()
            if not suppress:
                from repro.tcl.expr import format_number

                _scan_assign(interp, var_names, var_i, format_number(value))
                var_i += 1
                assigned += 1
        elif conv == "s":
            j = si
            while j < limit and not string[j].isspace():
                j += 1
            if j == si:
                break
            if not suppress:
                _scan_assign(interp, var_names, var_i, string[si:j])
                var_i += 1
                assigned += 1
            si = j
        elif conv == "c":
            if si >= n:
                break
            if not suppress:
                _scan_assign(interp, var_names, var_i, str(ord(string[si])))
                var_i += 1
                assigned += 1
            si += 1
        else:
            raise TclError('bad scan conversion character "%s"' % conv)
    return str(assigned)


def _scan_assign(interp, names, index, value):
    if index >= len(names):
        raise TclError("different numbers of variable names and field specifiers")
    interp.set_var(names[index], value)


def _compile_regexp(pattern, nocase):
    try:
        return re.compile(pattern, re.IGNORECASE if nocase else 0)
    except re.error as err:
        raise TclError("couldn't compile regular expression pattern: %s" % err)


def cmd_regexp(interp, argv):
    args = argv[1:]
    nocase = False
    indices = False
    while args and args[0].startswith("-"):
        if args[0] == "-nocase":
            nocase = True
        elif args[0] == "-indices":
            indices = True
        elif args[0] == "--":
            args = args[1:]
            break
        else:
            break
        args = args[1:]
    if len(args) < 2:
        _wrong_args("regexp ?switches? exp string ?matchVar? ?subMatchVar ...?")
    pattern, string = args[0], args[1]
    match_vars = args[2:]
    match = _compile_regexp(pattern, nocase).search(string)
    if match is None:
        return "0"
    groups = [match.group(0)] + list(match.groups(""))
    spans = [match.span(0)] + [
        match.span(i + 1) if match.group(i + 1) is not None else (-1, -2)
        for i in range(match.re.groups)
    ]
    for i, name in enumerate(match_vars):
        if indices:
            if i < len(spans):
                start, stop = spans[i]
                interp.set_var(name, "%d %d" % (start, stop - 1))
            else:
                interp.set_var(name, "-1 -1")
        else:
            interp.set_var(name, groups[i] if i < len(groups) else "")
    return "1"


def cmd_regsub(interp, argv):
    args = argv[1:]
    nocase = False
    everywhere = False
    while args and args[0].startswith("-"):
        if args[0] == "-nocase":
            nocase = True
        elif args[0] == "-all":
            everywhere = True
        elif args[0] == "--":
            args = args[1:]
            break
        else:
            break
        args = args[1:]
    if len(args) != 4:
        _wrong_args("regsub ?switches? exp string subSpec varName")
    pattern, string, sub_spec, var_name = args
    regex = _compile_regexp(pattern, nocase)

    def replace(match):
        out = []
        i = 0
        while i < len(sub_spec):
            ch = sub_spec[i]
            if ch == "&":
                out.append(match.group(0))
            elif ch == "\\" and i + 1 < len(sub_spec):
                nxt = sub_spec[i + 1]
                if nxt.isdigit():
                    idx = int(nxt)
                    out.append(match.group(idx) or "" if idx <= match.re.groups else "")
                else:
                    out.append(nxt)
                i += 1
            else:
                out.append(ch)
            i += 1
        return "".join(out)

    result, count = regex.subn(replace, string, count=0 if everywhere else 1)
    interp.set_var(var_name, result)
    return str(count)


def register(interp):
    interp.register("string", cmd_string)
    interp.register("format", cmd_format)
    interp.register("scan", cmd_scan)
    interp.register("regexp", cmd_regexp)
    interp.register("regsub", cmd_regsub)
