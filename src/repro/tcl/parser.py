"""The Tcl script parser.

Tcl's evaluation model parses a script into *commands* (separated by
newlines or semicolons), each command into *words*, and each word into
*parts*: literal text, variable substitutions (``$name``,
``$name(index)``, ``${name}``), and command substitutions (``[...]``).
Braced words suppress all substitution; double-quoted words allow it but
group whitespace.  Backslash sequences are resolved at parse time.

The parser is substitution-free: it produces a tree that the interpreter
walks at evaluation time, so the same parsed body can be re-evaluated
cheaply (procedure bodies, loop bodies).  A small cache keyed on the
script string makes repeated ``eval`` of identical strings fast, which
matters for Wafe where callbacks are Tcl strings evaluated on every
event.
"""

from repro.tcl.cache import LRUCache
from repro.tcl.errors import TclError

# Part kinds.  A word is a list of (kind, payload) tuples.
LITERAL = "lit"
VARSUB = "var"  # payload: (name, index_parts_or_None)
CMDSUB = "cmd"  # payload: script string


class Word:
    """One parsed word: an ordered list of parts plus quoting info.

    ``pos`` is the absolute character offset of the word's first
    character in the script string handed to :func:`parse_script`
    (the opening brace/quote for braced/quoted words).  Combined with
    :func:`line_col` it gives exact source positions to error messages
    and the static analyzer without any per-character bookkeeping in
    the hot parsing loops.
    """

    __slots__ = ("parts", "braced", "pos")

    def __init__(self, parts, braced=False, pos=0):
        self.parts = parts
        self.braced = braced
        self.pos = pos

    def is_literal(self):
        return len(self.parts) == 1 and self.parts[0][0] == LITERAL

    def literal_value(self):
        return self.parts[0][1]

    def __repr__(self):  # pragma: no cover - debugging aid
        return "Word(%r, braced=%r)" % (self.parts, self.braced)


def line_col(script, pos):
    """The 1-based (line, column) of character offset ``pos``.

    Computed on demand -- parsing only records integer offsets, so the
    common case (no error, no lint) never pays for line accounting.
    """
    if pos < 0:
        pos = 0
    if pos > len(script):
        pos = len(script)
    line = script.count("\n", 0, pos) + 1
    last_nl = script.rfind("\n", 0, pos)
    return line, pos - last_nl


def _parse_error(message, script, pos):
    """Raise a TclError pointing at ``pos`` in ``script``."""
    line, col = line_col(script, pos)
    raise TclError("%s (line %d column %d)" % (message, line, col),
                   line=line, col=col)


_ESCAPES = {
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "v": "\v",
}

_VARNAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)


def backslash_char(script, pos):
    """Resolve the backslash sequence starting at ``script[pos] == '\\'``.

    Returns ``(text, next_pos)``.  Follows Tcl's rules: named escapes,
    ``\\xHH`` hex, ``\\ooo`` octal (up to three digits), backslash-newline
    (plus following whitespace) collapsing to a single space, and any
    other character standing for itself.
    """
    nxt = pos + 1
    if nxt >= len(script):
        return "\\", nxt
    ch = script[nxt]
    if ch in _ESCAPES:
        return _ESCAPES[ch], nxt + 1
    if ch == "\n":
        end = nxt + 1
        while end < len(script) and script[end] in " \t":
            end += 1
        return " ", end
    if ch == "x":
        end = nxt + 1
        while end < len(script) and script[end] in "0123456789abcdefABCDEF":
            end += 1
        if end == nxt + 1:
            return "x", end
        # Tcl keeps only the last 8 bits of a long hex escape.
        return chr(int(script[nxt + 1 : end], 16) & 0xFF), end
    if ch in "01234567":
        end = nxt
        while end < len(script) and end < nxt + 3 and script[end] in "01234567":
            end += 1
        return chr(int(script[nxt:end], 8) & 0xFF), end
    return ch, nxt + 1


def _find_matching_bracket(script, pos):
    """Find the ``]`` matching the ``[`` at ``script[pos]``.

    Tracks nested brackets and skips braced and quoted regions and
    backslash escapes, mirroring how Tcl's recursive parser would consume
    the nested script.
    """
    depth = 0
    i = pos
    n = len(script)
    while i < n:
        ch = script[i]
        if ch == "\\":
            i += 2
            continue
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth == 0:
                return i
        elif ch == "{":
            i = _skip_braces(script, i)
            continue
        elif ch == '"':
            i = _skip_quotes(script, i)
            continue
        i += 1
    _parse_error("missing close-bracket", script, pos)


def _skip_braces(script, pos):
    """Return the index just past the brace block starting at ``pos``."""
    depth = 0
    i = pos
    n = len(script)
    while i < n:
        ch = script[i]
        if ch == "\\":
            i += 2
            continue
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    _parse_error("missing close-brace", script, pos)


def _skip_quotes(script, pos):
    """Return the index just past the quoted region starting at ``pos``."""
    i = pos + 1
    n = len(script)
    while i < n:
        ch = script[i]
        if ch == "\\":
            i += 2
            continue
        if ch == '"':
            return i + 1
        i += 1
    _parse_error('missing "', script, pos)


def parse_varsub(script, pos):
    """Parse the variable substitution at ``script[pos] == '$'``.

    Returns ``(part_or_None, next_pos)``.  ``None`` means the dollar sign
    did not introduce a substitution (bare ``$``), in which case the
    caller should treat it as a literal character.
    """
    n = len(script)
    i = pos + 1
    if i >= n:
        return None, pos + 1
    if script[i] == "{":
        end = script.find("}", i + 1)
        if end < 0:
            _parse_error("missing close-brace for variable name",
                         script, pos)
        return (VARSUB, (script[i + 1 : end], None)), end + 1
    start = i
    while i < n and script[i] in _VARNAME_CHARS:
        i += 1
    if i == start:
        return None, pos + 1
    name = script[start:i]
    if i < n and script[i] == "(":
        # Array reference: the index itself undergoes substitution.
        depth = 0
        j = i
        while j < n:
            ch = script[j]
            if ch == "\\":
                j += 2
                continue
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if j >= n:
            _parse_error("missing )", script, i)
        index_parts = _parse_part_string(script, i + 1, j)
        return (VARSUB, (name, index_parts)), j + 1
    return (VARSUB, (name, None)), i


def _parse_part_string(script, start, stop):
    """Parse a region of ``script`` (e.g. an array index) into
    substitution parts.  Operating on the full string with bounds --
    rather than on a slice -- keeps every position absolute, so parse
    errors from nested constructs point at the real source location."""
    parts = []
    buf = []
    i = start
    while i < stop:
        ch = script[i]
        if ch == "\\":
            out, i = backslash_char(script, i)
            buf.append(out)
        elif ch == "$":
            part, nxt = parse_varsub(script, i)
            if part is None:
                buf.append("$")
                i = nxt
            else:
                if buf:
                    parts.append((LITERAL, "".join(buf)))
                    buf = []
                parts.append(part)
                i = nxt
        elif ch == "[":
            end = _find_matching_bracket(script, i)
            if buf:
                parts.append((LITERAL, "".join(buf)))
                buf = []
            parts.append((CMDSUB, script[i + 1 : end]))
            i = end + 1
        else:
            buf.append(ch)
            i += 1
    if buf or not parts:
        parts.append((LITERAL, "".join(buf)))
    return parts


def _strip_brace_body(body):
    """Process backslash-newline inside a braced word.

    Everything else inside braces is literal, but Tcl still collapses
    backslash-newline sequences to a space so long lines can be wrapped.
    """
    if "\\\n" not in body:
        return body
    out = []
    i = 0
    n = len(body)
    while i < n:
        if body[i] == "\\" and i + 1 < n and body[i + 1] == "\n":
            out.append(" ")
            i += 2
            while i < n and body[i] in " \t":
                i += 1
        else:
            out.append(body[i])
            i += 1
    return "".join(out)


class ParsedCommand:
    """One command: a sequence of :class:`Word` objects.

    ``pos`` is the absolute offset of the command's first word in the
    parsed script (0 for an empty command).
    """

    __slots__ = ("words", "pos")

    def __init__(self, words, pos=0):
        self.words = words
        self.pos = pos


def parse_script(script):
    """Parse a full script into a list of :class:`ParsedCommand`."""
    commands = []
    pos = 0
    n = len(script)
    while pos < n:
        cmd, pos = _parse_command(script, pos)
        if cmd is not None and cmd.words:
            commands.append(cmd)
    return commands


def _parse_command(script, pos):
    n = len(script)
    # Skip leading whitespace, separators, and comments.
    while pos < n:
        ch = script[pos]
        if ch in " \t\n;":
            pos += 1
        elif ch == "\\" and pos + 1 < n and script[pos + 1] == "\n":
            pos += 2
        elif ch == "#":
            while pos < n and script[pos] != "\n":
                if script[pos] == "\\" and pos + 1 < n and script[pos + 1] == "\n":
                    pos += 2
                else:
                    pos += 1
        else:
            break
    if pos >= n:
        return None, pos

    words = []
    start = pos
    while pos < n:
        ch = script[pos]
        if ch in "\n;":
            pos += 1
            break
        if ch in " \t":
            pos += 1
            continue
        if ch == "\\" and pos + 1 < n and script[pos + 1] == "\n":
            pos += 2
            continue
        word, pos = _parse_word(script, pos)
        words.append(word)
    return ParsedCommand(words, start), pos


def _parse_word(script, pos):
    ch = script[pos]
    if ch == "{":
        end = _skip_braces(script, pos)
        body = _strip_brace_body(script[pos + 1 : end - 1])
        if end < len(script) and script[end] not in " \t\n;":
            _parse_error("extra characters after close-brace", script, end)
        return Word([(LITERAL, body)], braced=True, pos=pos), end
    if ch == '"':
        end = _skip_quotes(script, pos)
        parts = _parse_part_string_quoted(script, pos + 1, end - 1)
        if end < len(script) and script[end] not in " \t\n;":
            _parse_error("extra characters after close-quote", script, end)
        return Word(parts, pos=pos), end
    return _parse_bare_word(script, pos)


def _parse_part_string_quoted(script, start, stop):
    """Parse the interior of a double-quoted word (substitutions active)."""
    parts = []
    buf = []
    i = start
    while i < stop:
        ch = script[i]
        if ch == "\\":
            out, i = backslash_char(script, i)
            buf.append(out)
        elif ch == "$":
            part, nxt = parse_varsub(script, i)
            if part is None:
                buf.append("$")
                i = nxt
            else:
                if buf:
                    parts.append((LITERAL, "".join(buf)))
                    buf = []
                parts.append(part)
                i = nxt
        elif ch == "[":
            end = _find_matching_bracket(script, i)
            if buf:
                parts.append((LITERAL, "".join(buf)))
                buf = []
            parts.append((CMDSUB, script[i + 1 : end]))
            i = end + 1
        else:
            buf.append(ch)
            i += 1
    if buf or not parts:
        parts.append((LITERAL, "".join(buf)))
    return parts


def _parse_bare_word(script, pos):
    parts = []
    buf = []
    i = pos
    n = len(script)
    while i < n:
        ch = script[i]
        if ch in " \t\n;":
            break
        if ch == "\\":
            if i + 1 < n and script[i + 1] == "\n":
                break  # line continuation ends the word
            out, i = backslash_char(script, i)
            buf.append(out)
        elif ch == "$":
            part, nxt = parse_varsub(script, i)
            if part is None:
                buf.append("$")
                i = nxt
            else:
                if buf:
                    parts.append((LITERAL, "".join(buf)))
                    buf = []
                parts.append(part)
                i = nxt
        elif ch == "[":
            end = _find_matching_bracket(script, i)
            if buf:
                parts.append((LITERAL, "".join(buf)))
                buf = []
            parts.append((CMDSUB, script[i + 1 : end]))
            i = end + 1
        else:
            buf.append(ch)
            i += 1
    if buf or not parts:
        parts.append((LITERAL, "".join(buf)))
    return Word(parts, pos=pos), i


class ParseCache:
    """A bounded LRU memo of ``script -> parsed commands``.

    Wafe evaluates the same callback strings over and over; caching the
    parse avoids re-tokenising on every button press.  Eviction is true
    least-recently-used (a hit refreshes recency, an insert past the
    bound drops the oldest entry), so steady-state workloads with more
    than ``maxsize`` distinct scripts degrade gracefully instead of
    losing the whole cache at once.
    """

    def __init__(self, maxsize=512):
        self._cache = LRUCache(maxsize)

    @property
    def maxsize(self):
        return self._cache.maxsize

    def get(self, script):
        parsed = self._cache.get(script)
        if parsed is None:
            parsed = self._cache.put(script, parse_script(script))
        return parsed

    def __len__(self):
        return len(self._cache)

    def __contains__(self, script):
        return script in self._cache

    def clear(self):
        self._cache.clear()

    def reset_stats(self):
        self._cache.reset_stats()

    def stats(self):
        return self._cache.stats()
