"""One connected client: a full Wafe instance over a socket.

A session is what the paper calls "one Wafe binary" -- its own Tcl
interpreter, simulated display, widget tree, and line channel -- except
that hundreds of them share one process and one event core.  The
session poses as the ``wafe.frontend`` of its Wafe instance, so every
existing command (``echo``, ``sync``, ``setPrefix``, error reporting)
routes to the connected client unchanged; the outbound half is the same
:class:`~repro.core.channel.OutboundChannel` machine the stdio frontend
uses, instantiated over the client socket.

Isolation is layered: the interpreter's fault containment (eval
budgets, recursion ceiling, the Python-exception firewall) bounds what
one command line can do; :class:`~repro.server.quotas.SessionQuotas`
bounds what the whole session can accumulate; and teardown sweeps every
event-core source the session registered
(:meth:`~repro.xt.app.XtAppContext.release_core_sources`), so a dead
session leaves nothing behind on the shared loop.
"""

import os
import time as _time

from repro.tcl.errors import TclError, log_panic
from repro.core.channel import LineParser, OutboundChannel
from repro.core.wafe import Wafe, VERSION
from repro.server.quotas import SessionQuotas
from repro.xlib.display import close_display


class SocketTransport:
    """A connected stream socket (Unix or TCP), already nonblocking."""

    def __init__(self, conn, addr=None):
        self.conn = conn
        self.addr = addr
        self.closed = False

    def read_obj(self):
        """The object registered for read-readiness."""
        return self.conn

    def write_fd(self):
        return self.conn.fileno()

    def recv(self):
        """One nonblocking read; b"" on EOF/death, None on EAGAIN."""
        try:
            return self.conn.recv(65536)
        except BlockingIOError:
            return None
        except (ConnectionResetError, OSError, ValueError):
            return b""

    def send(self, chunk):
        return self.conn.send(chunk)

    def close(self):
        if self.closed:
            return
        self.closed = True
        try:
            self.conn.close()
        except OSError:
            pass


class StdioTransport:
    """The degenerate single-session client: stdin in, stdout out.

    This re-expresses the historical one-backend stdio path as a
    session, so ``wafe --serve --stdio`` behaves like a pipeline stage
    speaking the same protocol as a socket client.
    """

    def __init__(self, in_fd=0, out_fd=1):
        self.in_fd = in_fd
        self.out_fd = out_fd
        self.closed = False
        os.set_blocking(in_fd, False)

    def read_obj(self):
        return self.in_fd

    def write_fd(self):
        return self.out_fd

    def recv(self):
        try:
            return os.read(self.in_fd, 65536)
        except BlockingIOError:
            return None
        except (OSError, ValueError):
            return b""

    def send(self, chunk):
        return os.write(self.out_fd, chunk)

    def close(self):
        self.closed = True  # stdio stays open; it belongs to the shell


class Session(OutboundChannel):
    """One client connection with its own contained Wafe instance."""

    def __init__(self, server, sid, transport, build="athena",
                 quotas=None, compile=True, greeting=True):
        self.server = server
        self.sid = sid
        self.transport = transport
        self.quotas = quotas if quotas is not None else SessionQuotas()
        self.ended = False
        self.end_reason = None
        self.doomed = None          # pending reap reason
        self.commands_run = 0
        self.created = _time.monotonic()
        self.last_activity = self.created
        self._init_outbound()
        # The session's own toolkit world on the *shared* core: a
        # private display name keeps its widget tree and damage state
        # apart from every neighbor's.
        self.display_name = ":s%d" % sid
        self.wafe = Wafe(build=build, display_name=self.display_name,
                         core=server.core, compile=compile,
                         use_selectors=server.core.use_selectors)
        self.parser = LineParser(max_line=self.quotas.max_line)
        # Pose as the frontend: echo/sync/errors all route to the
        # client over this channel.
        self.wafe.frontend = self
        self.wafe.quotas = self.quotas
        # Session-level advisories go to the server log, tagged.
        self.wafe.error_sink = self._log_advisory
        self.quotas.on_trip = self._quota_tripped
        self.quotas.on_change = self.apply_quotas
        self.wafe.interp.on_limit_trip = self._interp_limit_tripped
        self.wafe.interp.info_extensions["serverstats"] = \
            self._info_serverstats
        self.apply_quotas()
        self._input_id = self.wafe.app.add_input(
            transport.read_obj(), self._on_readable,
            label="session %d" % sid)
        self.wafe.app.add_frame_hook(self._frame_flush)
        if greeting:
            self.send("wafe server %s session %d\n" % (VERSION, sid))
            self.flush()

    # ------------------------------------------------------------------
    # Quotas

    def apply_quotas(self):
        """Push the quota knobs into the live runtime (init and after
        every ``sessionQuota`` set)."""
        quotas = self.quotas
        self.wafe.interp.set_eval_limits(time_ms=quotas.eval_time_ms,
                                         commands=quotas.eval_commands)
        self.parser.max_line = quotas.max_line
        if quotas.safe_mode and not self.wafe.safe_mode:
            self.wafe.enable_safe_mode()

    def _interp_limit_tripped(self, kind):
        # commands/time/recursion trips flow from the interpreter's
        # limit machinery into the session ledger (the TclLimitError
        # itself still unwinds the offending line).
        self.quotas.trip(kind)

    def _quota_tripped(self, kind, message):
        self.server.quota_tripped(self, kind)
        limit = self.quotas.max_trips
        if limit and self.quotas.total_trips() >= limit and not self.doomed:
            self.doomed = "quota"
            # Tell the client why before the reap, best-effort.
            self.send("error: session quota trip limit reached "
                      "(%d trips); closing\n" % self.quotas.total_trips())
            # The reap itself is deferred to a work proc: a trip can
            # fire deep inside command dispatch, where tearing down the
            # interpreter under our own feet would be unsafe.
            self.server.core.add_work_proc(
                self._reap_doomed, label="session %d reap" % self.sid)

    def _reap_doomed(self):
        if not self.ended and self.doomed:
            self.end(self.doomed)
        return True  # one-shot

    def idle_for_ms(self, now=None):
        now = _time.monotonic() if now is None else now
        return (now - self.last_activity) * 1000.0

    # ------------------------------------------------------------------
    # Client -> session (command dispatch)

    def _on_readable(self, fileobj):
        data = self.transport.recv()
        if data is None:
            return  # spurious wakeup
        if not data:
            self.end("eof")
            return
        self.last_activity = _time.monotonic()
        lines, errors = self.parser.split_lines_tolerant(data)
        for err in errors:
            # One garbage/oversized line resynchronizes at the next
            # newline instead of poisoning the session -- but it is a
            # quota trip, so a client spraying garbage gets reaped.
            self.quotas.trip("line", str(err))
            self.send("error: %s\n" % err)
        for raw in lines:
            if self.ended or self.doomed:
                break
            kind, line = self.parser.classify(raw)
            if kind != "command":
                # The stdio frontend passes non-command lines through
                # to its own stdout; a network session has no such
                # side channel -- reflect the protocol error instead.
                self.send("error: not a command line (prefix is %s)\n"
                          % self.parser.prefix)
                continue
            started = _time.perf_counter()
            try:
                self.wafe.run_command_line(line)
            except Exception as exc:  # noqa: BLE001 -- last resort
                summary = log_panic('session %d line "%s"'
                                    % (self.sid, line[:80]), exc)
                self.send("error: internal error evaluating line (%s)\n"
                          % summary)
            self.commands_run += 1
            self.server.record_latency(_time.perf_counter() - started)
        if self.ended:
            return
        # Dispatch this session's X events (exposes from the commands
        # just run) and write the replies through promptly -- a client
        # blocked on readline() must not wait for loop idle.
        self.wafe.app.process_pending()
        self.flush()

    # ------------------------------------------------------------------
    # Session -> client: the OutboundChannel transport hooks

    @property
    def high_water(self):
        return self.quotas.high_water

    def _channel_open(self):
        return not self.transport.closed

    def _channel_write(self, chunk):
        return self.transport.send(chunk)

    def _channel_dead(self):
        self.end("eof")

    def _add_output_watch(self, callback):
        return self.wafe.app.add_output(
            self.transport.write_fd(), callback,
            label="session %d drain" % self.sid)

    def _remove_output_watch(self, watch_id):
        self.wafe.app.remove_output(watch_id)

    def _add_idle_flush(self, callback):
        return self.wafe.app.add_work_proc(callback)

    def _remove_idle_flush(self, work_id):
        self.wafe.app.remove_work_proc(work_id)

    def _report_overflow(self):
        self.quotas.trip(
            "overflow",
            "session channel overflow: %d bytes queued and the client "
            "is not reading; dropping output" % self.queued_bytes())

    # ------------------------------------------------------------------
    # The frontend interface commands expect

    def mass_channel_fd(self):
        raise TclError("getChannel: no mass transfer channel in a "
                       "server session")

    def set_communication_variable(self, var_name, limit, script):
        raise TclError("setCommunicationVariable: no mass transfer "
                       "channel in a server session")

    # ------------------------------------------------------------------
    # Introspection

    def _info_serverstats(self, interp, argv):
        from repro.tcl.lists import list_to_string

        if len(argv) != 2:
            raise TclError('wrong # args: should be "info serverstats"')
        stats = self.server.serverstats()
        pairs = []
        for key in sorted(stats):
            value = stats[key]
            if isinstance(value, float):
                value = "%.3f" % value
            pairs += [key, str(value)]
        return list_to_string(pairs)

    def _log_advisory(self, message):
        self.server.log("session %d: %s" % (self.sid, message))

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self):
        """The ``quit`` command path (Wafe.quit closes its frontend)."""
        self.end("quit")

    def drain(self, deadline):
        """Bounded best-effort drain of queued output before teardown
        (the SIGTERM path): wait for writability against the shared
        monotonic deadline, never past it."""
        self.flush()
        core = self.server.core
        fd = self.transport.write_fd()
        while self._pending and not self.closed:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                break
            if not core.wait_writable(fd, remaining):
                break
            self._write_pending()

    def end(self, reason, detail=None):
        """Tear the session down and leave nothing on the shared core.

        Safe to call from any depth (a dead socket discovered inside a
        write, the idle reaper, server shutdown); only the first call
        acts."""
        if self.ended:
            return
        self.ended = True
        self.end_reason = reason
        if reason in ("quit", "shutdown"):
            # An orderly end owes the client whatever was queued; the
            # nonblocking flush sends what the socket will take now.
            self.flush()
        self.closed = True
        self.wafe.app.remove_frame_hook(self._frame_flush)
        self._clear_outbound()
        self.wafe.app.remove_input(self._input_id)
        # Sweep every timer/watch/work proc this session's scripts left
        # on the shared loop, then the socket and the private display.
        self.wafe.app.release_core_sources()
        self.transport.close()
        close_display(self.display_name)
        if self.wafe.frontend is self:
            self.wafe.frontend = None
        self.server.session_ended(self, reason, detail)
