"""Run the session server standalone:

    python -m repro.server --socket /tmp/wafe.sock
    python -m repro.server --port 7878 --max-sessions 64
    python -m repro.server --stdio

This is the same serve mode as ``wafe --serve``; see docs/SERVER.md.
"""

import sys

from repro.core.cli import split_arguments
from repro.server.listener import ServerError, serve_main


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    options, __, __ = split_arguments(argv)
    try:
        return serve_main(options, build=options.get("build", "athena"))
    except ServerError as err:
        sys.stderr.write("wafe-server: %s\n" % err)
        return 1


if __name__ == "__main__":
    sys.exit(main())
