"""The session server: listeners, capacity, reaping, shutdown.

One :class:`WafeServer` owns the shared event core and everything
global: the Unix/TCP listening sockets, the session table, the
:class:`~repro.server.supervisor.SessionSupervisor` ledger, the idle
reaper, the dispatch-latency histogram behind ``info serverstats``,
and the SIGTERM drain.  Degradation under load is explicit policy:

* the accept backlog is bounded (``serverBacklog``);
* past ``serverMaxSessions`` a connection gets a protocol-level
  ``error: server busy`` line and a close -- a refusal, not a hang;
* silent sessions past their idle quota are reaped on a timer;
* a session whose handler is quarantined by the event core (three
  strikes) is ended and classified, not left wedged.

Shutdown drains: every session's queued output gets a bounded chance
to reach its client through ``EventCore.wait_writable``, the Unix
socket path is unlinked, and ``EventCore.shutdown`` sweeps whatever
remains with leak accounting (zero leaked watches is the contract the
tests pin).
"""

import collections
import errno
import os
import signal
import socket
import stat
import sys
import time as _time

from repro.tcl.errors import log_panic
from repro.xt.eventcore import EventCore
from repro.server.quotas import ServerConfig, SessionQuotas
from repro.server.session import Session, SocketTransport, StdioTransport
from repro.server.supervisor import SessionSupervisor


class ServerError(Exception):
    """A listener-level failure (bad socket path, port in use...)."""


class WafeServer:
    """Many concurrent Wafe sessions on one shared event core."""

    #: Dispatch-latency samples kept for the p50/p99 ledger (bounded:
    #: the histogram must not grow with uptime).
    LATENCY_SAMPLES = 4096

    def __init__(self, build="athena", config=None, quota_defaults=None,
                 use_selectors=True, compile=True, log=None):
        self.build = build
        self.config = config if config is not None else ServerConfig()
        # Explicit quota settings stamped onto every new session's
        # quota set (tests and the CLI use this; per-session overrides
        # happen live via the sessionQuota command).
        self.quota_defaults = dict(quota_defaults or {})
        self.compile = compile
        self._log_sink = log
        self.core = EventCore(use_selectors=use_selectors)
        self.core.report = self.log
        self.core.error_handler = self._core_error
        self.core.on_quarantine = self._handler_quarantined
        self.sessions = {}           # sid -> Session
        self.supervisor = SessionSupervisor(report=self.log)
        self._next_sid = 1
        self._listeners = []         # [(socket, kind, address, watch_id)]
        self._unix_paths = []
        self._reap_timer = None
        self._stop = False
        self._shut_down = False
        self.leaked_watches = 0      # from the final core sweep
        self.counters = {
            "accepted": 0,
            "refused": 0,
            "accept_errors": 0,
            "core_errors": 0,
        }
        self.quota_trips = dict.fromkeys(SessionQuotas.TRIP_KINDS, 0)
        self._latencies = collections.deque(maxlen=self.LATENCY_SAMPLES)

    # ------------------------------------------------------------------
    # Logging / core hooks

    def log(self, message):
        if self._log_sink is not None:
            try:
                self._log_sink(message)
                return
            except Exception:  # noqa: BLE001 -- reporter of last resort
                pass
        sys.stderr.write("wafe-server: %s\n" % message)

    def _core_error(self, context, exc):
        # The shared loop's last-resort firewall: a fault that escaped
        # every session-level containment is logged, never raised.
        self.counters["core_errors"] += 1
        summary = log_panic(context, exc)
        self.log("contained fault in %s (%s)" % (context, summary))

    def _handler_quarantined(self, kind, fd, label, strikes, exc):
        """Three strikes on a session's handler: the event core already
        unregistered it; classify and reap the owning session so it is
        not left wedged with a client that can never be heard again."""
        session = self._session_for_fd(fd)
        if session is not None and not session.ended:
            session.end("quarantined",
                        "%s handler quarantined after %d failures"
                        % (kind, strikes))

    def _session_for_fd(self, fd):
        for session in self.sessions.values():
            try:
                if session.transport.read_obj().fileno() == fd:
                    return session
            except (OSError, ValueError, AttributeError):
                continue
        return None

    # ------------------------------------------------------------------
    # Listeners

    def listen_unix(self, path):
        """Bind a Unix listener, recovering a stale socket path.

        A leftover path is unlinked only when it is verifiably dead: it
        must be a socket (never delete a user's regular file) and a
        probe connect must be refused (a live server answering means
        the address is genuinely in use)."""
        if os.path.exists(path):
            try:
                mode = os.stat(path).st_mode
            except OSError as exc:
                raise ServerError("cannot stat %s: %s" % (path, exc))
            if not stat.S_ISSOCK(mode):
                raise ServerError(
                    "%s exists and is not a socket; refusing to unlink"
                    % path)
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(0.2)
            try:
                probe.connect(path)
            except (ConnectionRefusedError, socket.timeout):
                # Nobody home: a stale path from an unclean shutdown.
                os.unlink(path)
            except OSError as exc:
                if exc.errno == errno.ECONNREFUSED:
                    os.unlink(path)
                else:
                    raise ServerError(
                        "cannot probe %s: %s" % (path, exc))
            else:
                probe.close()
                raise ServerError(
                    "%s is in use by a live server" % path)
            finally:
                probe.close()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.bind(path)
        except OSError as exc:
            sock.close()
            raise ServerError("cannot bind %s: %s" % (path, exc))
        self._unix_paths.append(path)
        self._register_listener(sock, "unix", path)
        return path

    def listen_tcp(self, host="127.0.0.1", port=0):
        """Bind a TCP listener; returns the actual (host, port)."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        # Without SO_REUSEADDR a restart within TIME_WAIT of the old
        # server's connections fails with EADDRINUSE.
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, port))
        except OSError as exc:
            sock.close()
            raise ServerError("cannot bind %s:%s: %s" % (host, port, exc))
        address = sock.getsockname()
        self._register_listener(sock, "tcp", address)
        return address

    def _register_listener(self, sock, kind, address):
        sock.listen(max(1, self.config.backlog))
        sock.setblocking(False)
        watch_id = self.core.add_reader(sock, self._on_accept,
                                        label="%s listener" % kind)
        self._listeners.append((sock, kind, address, watch_id))
        if self._reap_timer is None:
            self._arm_reaper()

    # ------------------------------------------------------------------
    # Accept / refuse

    def _on_accept(self, listen_socket):
        # Drain the whole accept queue: one readiness wakeup may carry
        # many pending connections.
        while True:
            accepted = self.core.accept_connection(listen_socket)
            if accepted is None:
                return
            conn, addr = accepted
            if len(self.sessions) >= max(1, self.config.max_sessions):
                self._refuse(conn)
                continue
            self._create_session(conn, addr)

    def _refuse(self, conn):
        """Protocol-level load shed: tell the client *why* before the
        close so it can back off, instead of a silent hang."""
        self.counters["refused"] += 1
        try:
            conn.send(b"error: server busy (session limit reached)\n")
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass

    def _create_session(self, conn, addr):
        sid = self._next_sid
        self._next_sid += 1
        quotas = SessionQuotas()
        for attr, value in self.quota_defaults.items():
            quotas.set(attr, value)
        try:
            session = Session(self, sid, SocketTransport(conn, addr),
                              build=self.build, quotas=quotas,
                              compile=self.compile)
        except Exception as exc:  # noqa: BLE001 -- accept must survive
            self.counters["accept_errors"] += 1
            summary = log_panic("session %d setup" % sid, exc)
            self.log("session %d setup failed (%s)" % (sid, summary))
            try:
                conn.close()
            except OSError:
                pass
            return None
        self.counters["accepted"] += 1
        self.sessions[sid] = session
        return session

    def add_stdio_session(self, quotas=None):
        """The degenerate single-session client on stdin/stdout."""
        sid = self._next_sid
        self._next_sid += 1
        if quotas is None:
            quotas = SessionQuotas()
            for attr, value in self.quota_defaults.items():
                quotas.set(attr, value)
        session = Session(self, sid, StdioTransport(), build=self.build,
                          quotas=quotas, compile=self.compile)
        self.counters["accepted"] += 1
        self.sessions[sid] = session
        if self._reap_timer is None:
            self._arm_reaper()
        return session

    # ------------------------------------------------------------------
    # Session accounting (called by sessions)

    def session_ended(self, session, reason, detail=None):
        self.sessions.pop(session.sid, None)
        lifetime_ms = (_time.monotonic() - session.created) * 1000.0
        self.supervisor.session_ended(session.sid, reason, detail,
                                      lifetime_ms=lifetime_ms,
                                      commands_run=session.commands_run)

    def quota_tripped(self, session, kind):
        self.quota_trips[kind] = self.quota_trips.get(kind, 0) + 1

    def record_latency(self, seconds):
        self._latencies.append(seconds)

    def latency_percentiles(self):
        """(p50_ms, p99_ms) over the bounded sample window."""
        if not self._latencies:
            return (0.0, 0.0)
        ordered = sorted(self._latencies)
        last = len(ordered) - 1
        p50 = ordered[min(last, (len(ordered) * 50) // 100)]
        p99 = ordered[min(last, (len(ordered) * 99) // 100)]
        return (p50 * 1000.0, p99 * 1000.0)

    def serverstats(self):
        """The ledger behind ``info serverstats``."""
        p50, p99 = self.latency_percentiles()
        out = {
            "sessionsAccepted": self.counters["accepted"],
            "sessionsActive": len(self.sessions),
            "sessionsRefused": self.counters["refused"],
            "sessionsReaped": self.supervisor.reaped,
            "acceptErrors": self.counters["accept_errors"],
            "coreErrors": self.counters["core_errors"],
            "leakedWatches": self.leaked_watches,
            "dispatchP50Ms": p50,
            "dispatchP99Ms": p99,
            "latencySamples": len(self._latencies),
        }
        for kind, count in sorted(self.supervisor.ended.items()):
            out["ended%s" % kind.capitalize()] = count
        for kind, count in sorted(self.quota_trips.items()):
            out["trips%s" % kind.capitalize()] = count
        return out

    # ------------------------------------------------------------------
    # The idle reaper

    def _arm_reaper(self):
        interval = max(1, self.config.reap_interval_ms)
        self._reap_timer = self.core.add_timer(
            interval, self._reap_tick, label="idle session reaper")

    def _reap_tick(self):
        self._reap_timer = None
        now = _time.monotonic()
        for session in list(self.sessions.values()):
            idle_ms = session.quotas.idle_ms
            if idle_ms and session.idle_for_ms(now) >= idle_ms:
                # trip() notifies the server ledger via on_trip.
                session.quotas.trip("idle")
                session.end("idle",
                            "idle for %d ms (quota %d ms)"
                            % (int(session.idle_for_ms(now)), idle_ms))
        if not self._stop:
            self._arm_reaper()

    # ------------------------------------------------------------------
    # The loop

    def stop(self):
        self._stop = True

    def install_signal_handlers(self):
        """SIGTERM/SIGINT request an orderly stop; the run loop then
        performs the drain -- signal context does no teardown itself."""
        def request_stop(signum, frame):
            self.stop()
        signal.signal(signal.SIGTERM, request_stop)
        signal.signal(signal.SIGINT, request_stop)

    def run_once(self, timeout=0.05):
        """One scheduling pass of the shared loop; returns True when
        any handler, timer, or work proc ran."""
        worked = False
        if self.core.run_due_timers():
            worked = True
            timeout = 0.0
        deadline = self.core.next_deadline()
        if deadline is not None:
            timeout = max(0.0, min(timeout, deadline - _time.monotonic()))
        if self.core.poll(timeout):
            worked = True
        if self.core.run_one_work_proc():
            worked = True
        # Dispatch any X events the pass produced in each session
        # (damage flushes from timer scripts, for example); command
        # dispatch already does this inline.
        for session in list(self.sessions.values()):
            if not session.ended and session.wafe.app.pending():
                session.wafe.app.process_pending()
                worked = True
        return worked

    def run(self, until=None, max_idle=None):
        """The server main loop: runs until :meth:`stop` (SIGTERM) or
        the ``until`` predicate, then shuts down gracefully."""
        idle = 0
        while not self._stop:
            if until is not None and until():
                break
            if self.run_once():
                idle = 0
                continue
            idle += 1
            if max_idle is not None and idle >= max_idle:
                break
        return self.shutdown()

    # ------------------------------------------------------------------
    # Shutdown

    def close_listeners(self):
        """Stop accepting and unlink the Unix socket paths."""
        for sock, __, __, watch_id in self._listeners:
            self.core.remove_watch(watch_id)
            try:
                sock.close()
            except OSError:
                pass
        self._listeners = []
        for path in self._unix_paths:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._unix_paths = []

    def shutdown(self):
        """Orderly shutdown: stop accepting, drain every session's
        outbound buffer against one shared deadline, end the sessions,
        cancel the reaper, and sweep the core with leak accounting.
        Returns the number of leaked watches (the contract: 0)."""
        if self._shut_down:
            return self.leaked_watches
        self._shut_down = True
        self._stop = True
        self.close_listeners()
        if self._reap_timer is not None:
            self.core.remove_timer(self._reap_timer)
            self._reap_timer = None
        deadline = _time.monotonic() + \
            max(0, self.config.drain_timeout_ms) / 1000.0
        for session in list(self.sessions.values()):
            session.drain(deadline)
        for session in list(self.sessions.values()):
            session.end("shutdown")
        self.leaked_watches = self.core.shutdown(
            drain_timeout=max(0.0, deadline - _time.monotonic()))
        if self.leaked_watches:
            self.log("shutdown leaked %d watches" % self.leaked_watches)
        return self.leaked_watches


def serve_main(options, build="athena"):
    """The ``--serve`` CLI mode (see repro.core.cli)."""
    config = ServerConfig()
    if options.get("max-sessions"):
        config.set("max_sessions", int(options["max-sessions"]))
    server = WafeServer(build=build, config=config)
    if options.get("stdio"):
        session = server.add_stdio_session()
        server.install_signal_handlers()
        server.run(until=lambda: session.ended)
        return 0
    bound = False
    if options.get("socket"):
        server.listen_unix(options["socket"])
        server.log("listening on %s" % options["socket"])
        bound = True
    if options.get("port"):
        host = options.get("host") or "127.0.0.1"
        address = server.listen_tcp(host, int(options["port"]))
        server.log("listening on %s:%d" % (address[0], address[1]))
        bound = True
    if not bound:
        raise ServerError(
            "serve mode needs --socket PATH, --port N, or --stdio")
    server.install_signal_handlers()
    server.run()
    return 0
