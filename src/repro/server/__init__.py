"""The multi-session frontend server ("Wafe as a service").

The paper's process model gives one application program one frontend;
this package scales the same line protocol to many concurrent clients
on one process: a :class:`~repro.server.listener.WafeServer` owns a
single shared :class:`~repro.xt.eventcore.EventCore` and accepts
connections over Unix and TCP sockets, and every accepted connection
becomes a :class:`~repro.server.session.Session` -- its own ``Interp``,
simulated display, widget tree, and outbound channel, fenced in by the
interpreter fault-containment stack plus per-session resource quotas
(:class:`~repro.server.quotas.SessionQuotas`).  A session that crashes,
stalls, or trips its budgets is classified and reaped by the
:class:`~repro.server.supervisor.SessionSupervisor` while every other
session keeps dispatching.  See docs/SERVER.md.
"""

from repro.server.quotas import ServerConfig, SessionQuotas
from repro.server.session import Session, SocketTransport, StdioTransport
from repro.server.supervisor import SessionSupervisor
from repro.server.listener import WafeServer, serve_main

__all__ = [
    "ServerConfig",
    "SessionQuotas",
    "Session",
    "SocketTransport",
    "StdioTransport",
    "SessionSupervisor",
    "WafeServer",
    "serve_main",
]
