"""Per-session resource quotas and server-level tuning knobs.

Both are :class:`~repro.core.supervisor.ResourceConfig` bundles: a
value set through a command (``sessionQuota``) or programmatically is
explicit and wins; everything else can be loaded from the Xrm resource
database the same way supervision policy is.

The quota set answers one question per resource class: how much of the
shared server may one client consume before its demands become the
server's problem?  Widget count and Xrm entries bound memory, the
outbound high water bounds a stalled reader, the line length bounds a
garbage sender, the eval budgets bound a ``while 1 {}`` bomb, and the
idle timeout bounds a half-open socket.  Every trip is counted by kind;
a session accumulating ``max_trips`` total trips is reaped.
"""

from repro.tcl.errors import TclError
from repro.core.channel import DEFAULT_MAX_LINE
from repro.core.supervisor import ResourceConfig


class SessionQuotas(ResourceConfig):
    """One connected session's resource budget (all 0 = unlimited,
    except ``max_trips`` where 0 disables reap-on-trips)."""

    FIELDS = (
        ("max_widgets", "sessionMaxWidgets", "SessionMaxWidgets",
         "int", 512),
        ("max_xrm_entries", "sessionMaxXrmEntries", "SessionMaxXrmEntries",
         "int", 2048),
        ("high_water", "sessionHighWater", "SessionHighWater",
         "int", 256 * 1024),
        ("max_line", "sessionMaxLine", "SessionMaxLine",
         "int", DEFAULT_MAX_LINE),
        ("idle_ms", "sessionIdleTimeout", "SessionIdleTimeout",
         "int", 0),
        ("eval_time_ms", "sessionEvalTimeLimit", "SessionEvalTimeLimit",
         "int", 1000),
        ("eval_commands", "sessionEvalCommandLimit",
         "SessionEvalCommandLimit", "int", 0),
        ("safe_mode", "sessionSafeMode", "SessionSafeMode",
         "bool", False),
        ("max_trips", "sessionMaxTrips", "SessionMaxTrips",
         "int", 16),
    )

    #: Every way a session can hit a budget.  ``commands``/``time``/
    #: ``recursion`` arrive from the interpreter's limit machinery via
    #: ``on_limit_trip``; the rest are charged at their choke points.
    TRIP_KINDS = ("widgets", "xrm", "overflow", "line", "idle",
                  "commands", "time", "recursion")

    def __init__(self):
        super().__init__()
        self.trips = dict.fromkeys(self.TRIP_KINDS, 0)
        # ``on_trip(kind, message)`` observes every trip (the session
        # escalates to a reap past ``max_trips``); ``on_change()`` fires
        # after a sessionQuota set so live limits are re-applied.
        self.on_trip = None
        self.on_change = None

    def total_trips(self):
        return sum(self.trips.values())

    def trip(self, kind, message=None):
        """Count one budget trip and notify the observer."""
        self.trips[kind] += 1
        hook = self.on_trip
        if hook is not None:
            try:
                hook(kind, message)
            except Exception:  # noqa: BLE001 -- observer must not mask
                pass

    def notify_changed(self):
        hook = self.on_change
        if hook is not None:
            hook()

    # -- choke-point charges (raise so the offending command fails) ----

    def charge_widgets(self, count):
        """Called before each widget creation with the current count."""
        if self.max_widgets and count >= self.max_widgets:
            message = ("session widget quota exceeded "
                       "(%d widgets allowed)" % self.max_widgets)
            self.trip("widgets", message)
            raise TclError(message)

    def charge_xrm(self, count):
        """Called before each mergeResources with the current entry
        count."""
        if self.max_xrm_entries and count >= self.max_xrm_entries:
            message = ("session resource-database quota exceeded "
                       "(%d entries allowed)" % self.max_xrm_entries)
            self.trip("xrm", message)
            raise TclError(message)


class ServerConfig(ResourceConfig):
    """Listener-level tuning: capacity cap, accept backlog, reaper
    cadence, and the shutdown drain budget."""

    FIELDS = (
        ("max_sessions", "serverMaxSessions", "ServerMaxSessions",
         "int", 256),
        ("backlog", "serverBacklog", "ServerBacklog", "int", 64),
        ("reap_interval_ms", "serverReapInterval", "ServerReapInterval",
         "int", 1000),
        ("drain_timeout_ms", "serverDrainTimeout", "ServerDrainTimeout",
         "int", 500),
    )
