"""Session supervision: end-of-life classification and the reap ledger.

The backend supervisor (PR 3) classifies a child process's death by
exit code or signal; a server session has no child process, so its
deaths are classified by *cause* instead.  The supervisor keeps the
counts the operator needs to answer "who is killing my sessions":
every end is one of :data:`END_KINDS`, the involuntary ones count as
reaps, and a bounded history ring keeps the most recent ends with
their details for post-mortems.
"""

import collections

#: How a session's life can end.
#:
#: ``eof``          the client closed (or the socket died mid-write)
#: ``quit``         the session script ran ``quit``
#: ``quota``        trip budget exhausted (see SessionQuotas.max_trips)
#: ``idle``         the idle reaper collected a silent session
#: ``error``        an unrecoverable internal fault in the session
#: ``quarantined``  the event core quarantined the session's handler
#: ``shutdown``     orderly server shutdown (SIGTERM drain)
END_KINDS = ("eof", "quit", "quota", "idle", "error", "quarantined",
             "shutdown")

#: The involuntary ends: the server decided, not the client.
REAP_KINDS = ("quota", "idle", "error", "quarantined")


class SessionSupervisor:
    """The ledger of session ends (and nothing else: the sessions
    themselves live in the server's table; a dead session is not
    restarted -- the client reconnects)."""

    HISTORY = 64

    def __init__(self, report=None):
        self.report = report
        self.ended = dict.fromkeys(END_KINDS, 0)
        self.reaped = 0
        self.history = collections.deque(maxlen=self.HISTORY)

    def session_ended(self, sid, kind, detail=None, lifetime_ms=0,
                      commands_run=0):
        """Record one session's end; unknown kinds count as ``error``
        (a misclassified death must not vanish from the ledger)."""
        if kind not in self.ended:
            detail = "unknown end kind %r%s" % (
                kind, (": " + detail) if detail else "")
            kind = "error"
        self.ended[kind] += 1
        if kind in REAP_KINDS:
            self.reaped += 1
        self.history.append((sid, kind, detail, int(lifetime_ms),
                             commands_run))
        if self.report is not None and kind in REAP_KINDS:
            self.report("session %d reaped (%s%s) after %d ms, "
                        "%d commands"
                        % (sid, kind, ": " + detail if detail else "",
                           int(lifetime_ms), commands_run))

    def total_ended(self):
        return sum(self.ended.values())
