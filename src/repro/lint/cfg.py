"""Basic-block control-flow graphs for Wafe/Tcl scripts.

The flow-sensitive lint rules (W012..W017) and the bytecode optimizer
both need the same structural fact: *which commands can run before
which*, under ``if``/``while``/``for``/``foreach``/``switch`` edges,
``break``/``continue`` loop exits, ``return``/``error`` aborts, and the
``catch`` firewall (which catches *every* abnormal exit code, so all
four terminators flow to the command after the ``catch``).  This
module builds that graph from parse trees without evaluating anything,
the same recursive-descent discipline as the analyzer: loop bodies are
visited once, nested script arguments become nested flow, and anything
not statically known degrades to a conservative havoc statement.

``proc`` bodies and deferred scripts (``addTimeOut``, ``addWorkProc``,
``ownSelection``, ``setCommunicationVariable`` transfer handlers)
execute in their own activation or at an unknown later time, so they
become separate sub-graphs, never edges of the enclosing graph.

Import discipline: :mod:`repro.tcl.optimize` runs this machinery from
inside the compile pipeline, so this module (and
:mod:`repro.lint.dataflow`) must only depend on the Tcl layer -- the
widget knowledge base and the analyzer stay out.
"""

import re

from repro.tcl import parser as _parser
from repro.tcl.errors import TclError
from repro.tcl.lists import string_to_list

#: Nesting bound: graph construction on adversarial input terminates.
MAX_DEPTH = 50

#: Graph kinds.
TOPLEVEL = "toplevel"
PROC = "proc"
DEFERRED = "deferred"
CALLBACK = "callback"

_INFO_EXISTS = re.compile(r"\[\s*info\s+exists\s+([A-Za-z0-9_]+)\s*\]")


def _compose(base_line, base_col, rel_line, rel_col):
    if rel_line == 1:
        return base_line, base_col + rel_col - 1
    return base_line + rel_line - 1, rel_col


def _offset_of(text, line, col):
    pos = 0
    for __ in range(line - 1):
        newline = text.find("\n", pos)
        if newline < 0:
            return len(text)
        pos = newline + 1
    return min(pos + col - 1, len(text))


class Region:
    """A piece of script text anchored at an absolute file position."""

    __slots__ = ("text", "line", "col")

    def __init__(self, text, line=1, col=1):
        self.text = text
        self.line = line
        self.col = col

    def position(self, offset):
        rel_line, rel_col = _parser.line_col(self.text, offset)
        return _compose(self.line, self.col, rel_line, rel_col)

    def subregion(self, start, stop):
        line, col = self.position(start)
        return Region(self.text[start:stop], line, col)


class Stmt:
    """One command occurrence inside a basic block.

    ``synthetic`` marks statements the builder injects for effects the
    surrounding construct implies rather than spells out:

    * ``("def", name)`` -- the construct assigns ``name`` here (the
      ``foreach`` loop variable at body entry, a ``catch`` message
      variable after the catch);
    * ``("assume", name)`` -- ``name`` is known to exist on this path
      (the body of an ``if {[info exists name]}`` guard);
    * ``("cond", text)`` -- a loop condition re-evaluated at the loop
      head (``for``), carrying the condition's variable reads.

    ``havoc`` means the statement may run statically invisible code
    (non-literal loop body, ``eval``-family commands): dataflow clients
    must assume it can define or read anything.
    """

    __slots__ = ("words", "region", "pos", "line", "col", "name",
                 "synthetic", "havoc", "cond_texts")

    def __init__(self, words, region, pos, name=None, synthetic=None):
        self.words = words
        self.region = region
        self.pos = pos
        if region is not None:
            self.line, self.col = region.position(pos)
        else:
            self.line, self.col = 1, 1
        self.name = name
        self.synthetic = synthetic
        self.havoc = False
        #: Condition expression texts evaluated by this statement
        #: (``if``/``elseif`` chains, ``while``), for use extraction.
        self.cond_texts = ()

    def __repr__(self):  # pragma: no cover - debugging aid
        if self.synthetic is not None:
            return "Stmt(synthetic=%r)" % (self.synthetic,)
        return "Stmt(%r at %d:%d)" % (self.name, self.line, self.col)


class Block:
    """A basic block: straight-line statements, explicit edges."""

    __slots__ = ("bid", "stmts", "succs", "preds", "after_terminator",
                 "in_catch")

    def __init__(self, bid, in_catch=False):
        self.bid = bid
        self.stmts = []
        self.succs = []
        self.preds = []
        #: True when this block only exists because commands follow a
        #: ``return``/``break``/``continue``/``error`` in the same
        #: linear sequence -- W010's territory, skipped by W013.
        self.after_terminator = False
        self.in_catch = in_catch

    def edge(self, other):
        if other not in self.succs:
            self.succs.append(other)
            other.preds.append(self)


class LoopInfo:
    """One loop occurrence, for the constant-condition rule (W015)."""

    __slots__ = ("stmt", "kind", "cond_text", "cond_line", "cond_col",
                 "head", "after", "breaks", "body_blocks")

    def __init__(self, stmt, kind, cond_text, cond_line, cond_col,
                 head, after):
        self.stmt = stmt
        self.kind = kind
        self.cond_text = cond_text
        self.cond_line = cond_line
        self.cond_col = cond_col
        self.head = head
        self.after = after
        #: (stmt, block) pairs of ``break`` commands bound to this loop.
        self.breaks = []
        #: Blocks built for the loop body (nested flow included).
        self.body_blocks = ()


class BranchInfo:
    """One ``if`` occurrence: (cond_text, line, col) per clause."""

    __slots__ = ("stmt", "block", "conds")

    def __init__(self, stmt, block, conds):
        self.stmt = stmt
        self.block = block
        self.conds = conds


class Graph:
    """One control-flow graph plus its nested sub-graphs."""

    __slots__ = ("kind", "name", "entry", "exit", "blocks", "params",
                 "subgraphs", "loops", "branches", "region", "_next_bid")

    def __init__(self, kind, name, region, params=()):
        self.kind = kind
        self.name = name
        self.region = region
        self.params = tuple(params)
        self.blocks = []
        self.subgraphs = []
        self.loops = []
        self.branches = []
        self._next_bid = 0
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self, in_catch=False):
        block = Block(self._next_bid, in_catch=in_catch)
        self._next_bid += 1
        self.blocks.append(block)
        return block

    def stmts(self):
        for block in self.blocks:
            for stmt in block.stmts:
                yield stmt

    def walk(self):
        """This graph and every nested sub-graph, depth-first."""
        yield self
        for sub in self.subgraphs:
            yield from sub.walk()


# ----------------------------------------------------------------------
# Construction

#: Abnormal-exit routing: where break/continue/return/error edges go.
#: ``catch`` rebinds all four to its continuation (it catches every
#: non-ok completion code); loops rebind break/continue only.
class _Context:
    __slots__ = ("brk", "cont", "ret", "err", "in_catch", "loop")

    def __init__(self, brk, cont, ret, err, in_catch, loop=None):
        self.brk = brk
        self.cont = cont
        self.ret = ret
        self.err = err
        self.in_catch = in_catch
        self.loop = loop  # the LoopInfo `break` statements bind to


def build_graph(source, line=1, col=1, kind=TOPLEVEL, name="<script>",
                params=()):
    """Build the CFG for a script region; returns a :class:`Graph`."""
    region = Region(source, line, col)
    graph = Graph(kind, name, region, params=params)
    builder = _Builder(graph)
    ctx = _Context(graph.exit, graph.exit, graph.exit, graph.exit, False)
    tail = builder.build_region(region, graph.entry, ctx, 0)
    tail.edge(graph.exit)
    return graph


class _Builder:
    def __init__(self, graph):
        self.graph = graph

    # -- shared parsing helpers (mirror the analyzer's region math) ----

    def _iter_commands(self, region):
        text = region.text
        pos = 0
        n = len(text)
        while pos < n:
            try:
                command, pos = _parser._parse_command(text, pos)
            except TclError as err:
                # Parse errors are W006's job (reported by the
                # analyzer); recover at the next line like it does.
                resume = pos
                if err.line is not None:
                    resume = max(resume,
                                 _offset_of(text, err.line, err.col))
                newline = text.find("\n", resume)
                if newline < 0:
                    return
                pos = newline + 1
                continue
            if command is not None and command.words:
                yield command

    @staticmethod
    def _literal(word):
        return word.literal_value() if word.is_literal() else None

    def _word_region(self, region, word, next_pos):
        text = region.text
        pos = word.pos
        if pos >= len(text):
            return None
        ch = text[pos]
        if ch == "{":
            end = _parser._skip_braces(text, pos)
            return region.subregion(pos + 1, end - 1)
        if ch == '"':
            end = _parser._skip_quotes(text, pos)
            return region.subregion(pos + 1, end - 1)
        return region.subregion(pos, next_pos)

    @staticmethod
    def _word_end(text, word):
        i = word.pos
        n = len(text)
        if i < n and text[i] in "{\"":
            return n
        while i < n and text[i] not in " \t\n;":
            if text[i] == "\\" and i + 1 < n:
                i += 2
            else:
                i += 1
        return i

    def _word_regions(self, region, parsed):
        regions = []
        words = parsed.words
        for i, word in enumerate(words):
            if i + 1 < len(words):
                next_pos = words[i + 1].pos
            else:
                next_pos = self._word_end(region.text, word)
            regions.append(self._word_region(region, word, next_pos))
        return regions

    # -- the recursive builder -----------------------------------------

    def build_region(self, region, current, ctx, depth):
        """Build ``region``'s flow starting in ``current``; returns the
        block control falls off into."""
        for command in self._iter_commands(region):
            words = command.words
            name = self._literal(words[0])
            stmt = Stmt(words, region, command.pos, name=name)
            if depth > MAX_DEPTH:
                stmt.havoc = True
                current.stmts.append(stmt)
                continue
            handler = _STRUCTURAL.get(name)
            if handler is not None:
                current = handler(self, region, command, stmt, current,
                                  ctx, depth)
            else:
                current.stmts.append(stmt)
        return current

    def _subflow(self, sub_region, pred, ctx, depth, in_catch=None):
        """A nested script region as blocks: returns (entry, tail)."""
        entry = self.graph.new_block(
            in_catch=ctx.in_catch if in_catch is None else in_catch)
        pred.edge(entry)
        tail = self.build_region(sub_region, entry, ctx, depth + 1)
        return entry, tail

    def _subgraph(self, sub_region, kind, name, params=()):
        graph = build_graph(sub_region.text, sub_region.line,
                            sub_region.col, kind=kind, name=name,
                            params=params)
        self.graph.subgraphs.append(graph)

    # -- structural command handlers -----------------------------------

    def _handle_if(self, region, command, stmt, current, ctx, depth):
        words = command.words
        regions = self._word_regions(region, command)
        # Walk the clause structure; bail to a havoc statement on any
        # shape the interpreter would have to discover dynamically.
        n = len(words)
        i = 1
        clauses = []      # (cond_text, cond_line, cond_col, body_region)
        else_region = None
        ok = True
        while ok:
            if i >= n:
                ok = False
                break
            cond_text = self._literal(words[i])
            cond_pos = words[i].pos
            i += 1
            if i < n and self._literal(words[i]) == "then":
                i += 1
            if i >= n or cond_text is None:
                ok = False
                break
            body = regions[i] if words[i].braced or words[i].is_literal() \
                else None
            if body is None:
                ok = False
                break
            cline, ccol = region.position(cond_pos)
            clauses.append((cond_text, cline, ccol, body))
            i += 1
            if i >= n:
                break
            keyword = self._literal(words[i])
            if keyword == "elseif":
                i += 1
                continue
            if keyword == "else":
                i += 1
            if i != n - 1:
                ok = False
                break
            else_region = regions[i] if (words[i].braced
                                         or words[i].is_literal()) else None
            if else_region is None:
                ok = False
            break
        if not ok:
            stmt.havoc = True
            current.stmts.append(stmt)
            return current
        stmt.cond_texts = tuple(c[0] for c in clauses)
        current.stmts.append(stmt)
        self.graph.branches.append(BranchInfo(
            stmt, current, [(c[0], c[1], c[2]) for c in clauses]))
        join = self.graph.new_block(in_catch=ctx.in_catch)
        for cond_text, __, __unused, body in clauses:
            entry, tail = self._subflow(body, current, ctx, depth)
            for guarded in _INFO_EXISTS.findall(cond_text):
                entry.stmts.insert(0, Stmt(
                    None, region, command.pos,
                    synthetic=("assume", guarded)))
            tail.edge(join)
        if else_region is not None:
            __, tail = self._subflow(else_region, current, ctx, depth)
            tail.edge(join)
        else:
            current.edge(join)
        return join

    def _handle_while(self, region, command, stmt, current, ctx, depth):
        words = command.words
        regions = self._word_regions(region, command)
        cond_text = self._literal(words[1]) if len(words) == 3 else None
        body = regions[2] if len(words) == 3 and (
            words[2].braced or words[2].is_literal()) else None
        if cond_text is None or body is None:
            stmt.havoc = True
            current.stmts.append(stmt)
            return current
        stmt.cond_texts = (cond_text,)
        head = self.graph.new_block(in_catch=ctx.in_catch)
        current.edge(head)
        head.stmts.append(stmt)  # the condition re-evaluates here
        after = self.graph.new_block(in_catch=ctx.in_catch)
        cline, ccol = region.position(words[1].pos)
        loop = LoopInfo(stmt, "while", cond_text, cline, ccol, head,
                        after)
        self.graph.loops.append(loop)
        body_ctx = _Context(after, head, ctx.ret, ctx.err, ctx.in_catch,
                            loop=loop)
        body_start = len(self.graph.blocks)
        __, tail = self._subflow(body, head, body_ctx, depth)
        loop.body_blocks = tuple(self.graph.blocks[body_start:])
        tail.edge(head)
        head.edge(after)
        return after

    def _handle_for(self, region, command, stmt, current, ctx, depth):
        words = command.words
        regions = self._word_regions(region, command)
        if len(words) != 5 or any(r is None for r in regions[1:]) or \
                not all(w.braced or w.is_literal() for w in words[1:]):
            stmt.havoc = True
            current.stmts.append(stmt)
            return current
        current.stmts.append(stmt)
        # Start script runs once, inline (break/continue propagate out).
        current = self.build_region(regions[1], current, ctx, depth + 1)
        cond_text = regions[2].text
        head = self.graph.new_block(in_catch=ctx.in_catch)
        current.edge(head)
        cond_stmt = Stmt(None, region, words[2].pos,
                         synthetic=("cond", cond_text))
        cond_stmt.cond_texts = (cond_text,)
        head.stmts.append(cond_stmt)
        after = self.graph.new_block(in_catch=ctx.in_catch)
        cline, ccol = region.position(words[2].pos)
        loop = LoopInfo(stmt, "for", cond_text, cline, ccol, head, after)
        self.graph.loops.append(loop)
        body_start = len(self.graph.blocks)
        next_entry = self.graph.new_block(in_catch=ctx.in_catch)
        body_ctx = _Context(after, next_entry, ctx.ret, ctx.err,
                            ctx.in_catch, loop=loop)
        __, body_tail = self._subflow(regions[4], head, body_ctx, depth)
        body_tail.edge(next_entry)
        next_tail = self.build_region(regions[3], next_entry, ctx,
                                      depth + 1)
        loop.body_blocks = tuple(self.graph.blocks[body_start:])
        next_tail.edge(head)
        head.edge(after)
        return after

    def _handle_foreach(self, region, command, stmt, current, ctx,
                        depth):
        words = command.words
        regions = self._word_regions(region, command)
        var = self._literal(words[1]) if len(words) == 4 else None
        body = regions[3] if len(words) == 4 and (
            words[3].braced or words[3].is_literal()) else None
        if var is None or body is None:
            stmt.havoc = True
            current.stmts.append(stmt)
            return current
        current.stmts.append(stmt)  # the list word substitutes once
        head = self.graph.new_block(in_catch=ctx.in_catch)
        current.edge(head)
        after = self.graph.new_block(in_catch=ctx.in_catch)
        loop = LoopInfo(stmt, "foreach", None, stmt.line, stmt.col,
                        head, after)
        self.graph.loops.append(loop)
        body_ctx = _Context(after, head, ctx.ret, ctx.err, ctx.in_catch,
                            loop=loop)
        body_start = len(self.graph.blocks)
        entry, tail = self._subflow(body, head, body_ctx, depth)
        loop.body_blocks = tuple(self.graph.blocks[body_start:])
        # The loop variable is only assigned when the list is non-empty,
        # so the definition sits on the head->body edge, not the head.
        entry.stmts.insert(0, Stmt(None, region, command.pos,
                                   synthetic=("def", var)))
        tail.edge(head)
        head.edge(after)
        return after

    def _handle_catch(self, region, command, stmt, current, ctx, depth):
        words = command.words
        regions = self._word_regions(region, command)
        body = regions[1] if len(words) in (2, 3) and (
            words[1].braced or words[1].is_literal()) else None
        if body is None:
            stmt.havoc = True
            current.stmts.append(stmt)
            return current
        current.stmts.append(stmt)
        after = self.graph.new_block(in_catch=ctx.in_catch)
        # ``catch`` returns the completion code of *any* abnormal exit:
        # break/continue/return/error inside all land here.  The direct
        # current->after edge models "the body aborted at its first
        # command" (any partial prefix joins to a superset of that).
        body_ctx = _Context(after, after, after, after, True)
        __, tail = self._subflow(body, current, body_ctx, depth,
                                 in_catch=True)
        tail.edge(after)
        current.edge(after)
        if len(words) == 3:
            msgvar = self._literal(words[2])
            if msgvar is not None:
                after.stmts.append(Stmt(None, region, command.pos,
                                        synthetic=("def", msgvar)))
        return after

    def _handle_time(self, region, command, stmt, current, ctx, depth):
        words = command.words
        regions = self._word_regions(region, command)
        body = regions[1] if len(words) in (2, 3) and (
            words[1].braced or words[1].is_literal()) else None
        if body is None:
            stmt.havoc = True
            current.stmts.append(stmt)
            return current
        current.stmts.append(stmt)
        after = self.graph.new_block(in_catch=ctx.in_catch)
        entry, tail = self._subflow(body, current, ctx, depth)
        tail.edge(entry)  # the body repeats ``count`` times
        tail.edge(after)
        current.edge(after)  # count may be 0
        return after

    def _handle_switch(self, region, command, stmt, current, ctx, depth):
        words = command.words
        regions = self._word_regions(region, command)
        i = 1
        while i < len(words):
            literal = self._literal(words[i])
            if literal is None or not literal.startswith("-"):
                break
            i += 1
        i += 1  # the string being matched
        bodies = []
        rest = words[i:]
        if len(rest) == 1 and rest[0].braced and regions[i] is not None:
            sub = regions[i]
            try:
                items = string_to_list(sub.text)
            except TclError:
                items = []
            for j in range(1, len(items), 2):
                if items[j] != "-":
                    bodies.append(Region(items[j], sub.line, sub.col))
        else:
            for j in range(i + 1, len(words), 2):
                if j < len(regions) and regions[j] is not None \
                        and self._literal(words[j]) != "-":
                    bodies.append(regions[j])
        current.stmts.append(stmt)
        if not bodies:
            return current
        join = self.graph.new_block(in_catch=ctx.in_catch)
        for body in bodies:
            __, tail = self._subflow(body, current, ctx, depth)
            tail.edge(join)
        # No-match (or non-literal default) falls through.
        current.edge(join)
        return join

    def _handle_proc(self, region, command, stmt, current, ctx, depth):
        words = command.words
        current.stmts.append(stmt)
        if len(words) != 4:
            return current
        name = self._literal(words[1])
        formals_text = self._literal(words[2])
        body = self._word_region(region, words[3],
                                 self._word_end(region.text, words[3]))
        if name is None or formals_text is None or body is None:
            return current
        try:
            formals = string_to_list(formals_text)
        except TclError:
            return current
        params = []
        for formal in formals:
            try:
                pieces = string_to_list(formal)
            except TclError:
                pieces = [formal]
            if pieces:
                params.append(pieces[0])
        self._subgraph(body, PROC, name, params=params)
        return current

    def _terminator(self, stmt, current, ctx, target_attr):
        current.stmts.append(stmt)
        current.edge(getattr(ctx, target_attr))
        if target_attr == "brk" and ctx.loop is not None:
            ctx.loop.breaks.append((stmt, current))
        follower = self.graph.new_block(in_catch=ctx.in_catch)
        follower.after_terminator = True
        return follower

    def _handle_return(self, region, command, stmt, current, ctx, depth):
        return self._terminator(stmt, current, ctx, "ret")

    def _handle_error(self, region, command, stmt, current, ctx, depth):
        return self._terminator(stmt, current, ctx, "err")

    def _handle_break(self, region, command, stmt, current, ctx, depth):
        return self._terminator(stmt, current, ctx, "brk")

    def _handle_continue(self, region, command, stmt, current, ctx,
                         depth):
        return self._terminator(stmt, current, ctx, "cont")

    def _handle_deferred(self, region, command, stmt, current, ctx,
                         depth):
        current.stmts.append(stmt)
        script_index = _DEFERRED_SCRIPT_ARG[stmt.name]
        words = command.words
        if script_index < len(words):
            regions = self._word_regions(region, command)
            sub = regions[script_index]
            if sub is not None and (words[script_index].braced
                                    or words[script_index].is_literal()):
                self._subgraph(sub, DEFERRED, stmt.name)
        return current


#: Commands whose Nth word is a script that runs at an unknown later
#: time (so it becomes a separate graph, never an edge).
_DEFERRED_SCRIPT_ARG = {
    "addWorkProc": 1,
    "addTimeOut": 2,
    "ownSelection": 3,
    "setCommunicationVariable": 3,
}

_STRUCTURAL = {
    "if": _Builder._handle_if,
    "while": _Builder._handle_while,
    "for": _Builder._handle_for,
    "foreach": _Builder._handle_foreach,
    "catch": _Builder._handle_catch,
    "time": _Builder._handle_time,
    "switch": _Builder._handle_switch,
    "proc": _Builder._handle_proc,
    "return": _Builder._handle_return,
    "error": _Builder._handle_error,
    "break": _Builder._handle_break,
    "continue": _Builder._handle_continue,
    "addWorkProc": _Builder._handle_deferred,
    "addTimeOut": _Builder._handle_deferred,
    "ownSelection": _Builder._handle_deferred,
    "setCommunicationVariable": _Builder._handle_deferred,
}
