"""A generic worklist dataflow solver over basic-block graphs.

The solver is deliberately ignorant of what flows: a *problem* supplies
the direction, the lattice (``join``/``equals``), the boundary state,
and a per-statement transfer function.  Two very different consumers
share it -- the flow-sensitive lint rules (W012..W017, see
:mod:`repro.lint.flowrules`) and the bytecode optimizer
(:mod:`repro.tcl.optimize`) -- which is why this module must not import
anything heavier than the graph classes: the optimizer runs inside
``repro.tcl.compile`` and must not drag the widget knowledge base into
every interpreter.

Three ready-made lattices cover the rules built so far:

* :class:`SetUnion` -- "may" facts (possibly-assigned variables,
  destroyed widget handles): sets joined by union.
* :class:`Liveness` -- backward may-read-before-overwrite, with a
  complemented set form so "everything live at exit" still admits
  kills.
* :class:`ConstLattice` -- simple constant propagation: a variable maps
  to a constant value or to ``NAC`` (not-a-constant); missing keys are
  "unknown" and join as NAC.
* plain reachability, a degenerate forward problem solved directly by
  :func:`reachable_blocks` because it needs no per-statement transfer.
"""

FORWARD = "forward"
BACKWARD = "backward"


class Problem:
    """Base class for dataflow problems.

    Subclasses define ``direction``, ``boundary()`` (the state at the
    graph entry for forward problems / exit for backward ones),
    ``initial()`` (the optimistic starting state of every other block),
    ``join(a, b)``, ``equals(a, b)``, ``copy(state)``, and
    ``transfer(stmt, state)`` which returns the state after (forward)
    or before (backward) the statement.
    """

    direction = FORWARD

    def boundary(self):
        raise NotImplementedError

    def initial(self):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def equals(self, a, b):
        raise NotImplementedError

    def copy(self, state):
        raise NotImplementedError

    def transfer(self, stmt, state):
        raise NotImplementedError


def _block_transfer(problem, block, state):
    stmts = block.stmts
    if problem.direction == BACKWARD:
        stmts = reversed(stmts)
    for stmt in stmts:
        state = problem.transfer(stmt, state)
    return state


def solve(graph, problem):
    """Iterate ``problem`` over ``graph`` to a fixpoint.

    Returns ``{block: state}`` mapping every block to its *input* state
    (state at block entry for forward problems, at block exit for
    backward ones).  Use :func:`stmt_states` to expand a block's input
    into per-statement states.
    """
    blocks = graph.blocks
    forward = problem.direction == FORWARD
    in_states = {}
    for block in blocks:
        in_states[block] = problem.initial()
    boundary_block = graph.entry if forward else graph.exit
    in_states[boundary_block] = problem.join(
        in_states[boundary_block], problem.boundary())
    worklist = list(blocks)
    pending = set(worklist)
    while worklist:
        block = worklist.pop()
        pending.discard(block)
        out_state = _block_transfer(
            problem, block, problem.copy(in_states[block]))
        targets = block.succs if forward else block.preds
        for target in targets:
            joined = problem.join(in_states[target], out_state)
            if not problem.equals(joined, in_states[target]):
                in_states[target] = joined
                if target not in pending:
                    pending.add(target)
                    worklist.append(target)
    return in_states


def stmt_states(problem, block, in_state):
    """Per-statement input states inside one block.

    Yields ``(stmt, state_before_transfer)`` in program order for
    forward problems and in *reverse* program order for backward ones
    (each state is the one the statement's transfer sees).
    """
    state = problem.copy(in_state)
    stmts = block.stmts
    if problem.direction == BACKWARD:
        stmts = list(reversed(stmts))
    for stmt in stmts:
        yield stmt, state
        state = problem.transfer(stmt, state)


def reachable_blocks(graph):
    """Blocks reachable from the graph entry along CFG edges."""
    seen = set()
    stack = [graph.entry]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        stack.extend(block.succs)
    return seen


# ----------------------------------------------------------------------
# Ready-made lattices


class SetUnion(Problem):
    """May-analysis over sets of names joined by union.

    The client provides ``gen(stmt)``/``kill(stmt)`` functions (each
    returning an iterable of names) and the direction.  ``havoc(stmt)``
    returning True makes the transfer add the distinguished
    :data:`EVERYTHING` marker, which absorbs all joins -- the sound
    answer for statements whose effects cannot be modeled (``eval``,
    ``uplevel``, ``source``).
    """

    #: Marker meaning "every name": membership tests on a state holding
    #: it must go through :meth:`contains`.
    EVERYTHING = "<everything>"

    def __init__(self, gen, kill, direction=FORWARD, boundary_names=(),
                 havoc=None):
        self.direction = direction
        self._gen = gen
        self._kill = kill
        self._havoc = havoc
        self._boundary = frozenset(boundary_names)

    def boundary(self):
        return set(self._boundary)

    def initial(self):
        return set()

    def join(self, a, b):
        return a | b

    def equals(self, a, b):
        return a == b

    def copy(self, state):
        return set(state)

    def contains(self, state, name):
        return self.EVERYTHING in state or name in state

    def transfer(self, stmt, state):
        if self._havoc is not None and self._havoc(stmt):
            state.add(self.EVERYTHING)
            return state
        for name in self._kill(stmt):
            state.discard(name)
        for name in self._gen(stmt):
            state.add(name)
        return state


class Liveness(Problem):
    """Backward liveness with a proper complement: the state is either
    ``("only", names)`` (exactly these names may be read later) or
    ``("allbut", names)`` (every name may be read later except these).

    The complemented form exists because of script exits: at the end of
    a top-level script *every* variable stays visible to later chunks
    and callbacks, so the exit boundary is "all live" -- yet a definite
    overwrite must still be able to kill liveness through it, which a
    plain may-set with an "everything" marker cannot express.

    The client provides ``uses(stmt)`` returning ``(names, everything)``
    (``everything`` True when the statement may read arbitrary
    variables -- unknown commands, procs that may ``upvar``) and
    ``defs(stmt)`` returning the names the statement *definitely*
    overwrites (only unconditional scalar writes qualify).
    """

    direction = BACKWARD

    def __init__(self, uses, defs, boundary_all=True):
        self._uses = uses
        self._defs = defs
        self._boundary_all = boundary_all

    def boundary(self):
        if self._boundary_all:
            return ("allbut", set())
        return ("only", set())

    def initial(self):
        return ("only", set())

    def join(self, a, b):
        atag, anames = a
        btag, bnames = b
        if atag == "only" and btag == "only":
            return ("only", anames | bnames)
        if atag == "allbut" and btag == "allbut":
            return ("allbut", anames & bnames)
        if atag == "only":
            return ("allbut", bnames - anames)
        return ("allbut", anames - bnames)

    def equals(self, a, b):
        return a[0] == b[0] and a[1] == b[1]

    def copy(self, state):
        return (state[0], set(state[1]))

    @staticmethod
    def is_live(state, name):
        tag, names = state
        if tag == "only":
            return name in names
        return name not in names

    def transfer(self, stmt, state):
        tag, names = state
        # Backward: the definite overwrite "happens" first (kills the
        # old value's liveness), then the statement's own reads revive.
        for name in self._defs(stmt):
            if tag == "only":
                names.discard(name)
            else:
                names.add(name)
        used, everything = self._uses(stmt)
        if everything:
            return ("allbut", set())
        if tag == "only":
            names.update(used)
        else:
            names.difference_update(used)
        return (tag, names)


#: Bottom of the constant lattice: definitely not a (known) constant.
NAC = object()

#: Top marker: the state of a block the solver has not reached yet.
#: Joins as the identity, so garbage out-states computed from unvisited
#: blocks during the first worklist sweep are ignored.
_TOP = "<top>"


class ConstLattice(Problem):
    """Forward constant propagation: ``{name: value-or-NAC}``.

    Missing keys mean "unknown at this point" and read as :data:`NAC`
    (the rules only act on proven constants, so the pessimistic default
    is sound).  The client provides ``effects(stmt, state)`` which
    mutates the dict in place: assign a value, assign :data:`NAC`, or
    call :meth:`wipe` for statements that may clobber anything.
    """

    def __init__(self, effects, boundary_consts=None):
        self.direction = FORWARD
        self._effects = effects
        self._boundary_consts = dict(boundary_consts or {})

    def boundary(self):
        return dict(self._boundary_consts)

    def initial(self):
        return {_TOP: True}

    def join(self, a, b):
        # The _TOP marker means "every key not listed is still the
        # optimistic top" (join identity), so a missing key reads as
        # top in a marked state and as NAC in a real one.  The marker
        # itself survives only when both sides carry it.  Transfer
        # functions keep the marker while adding real keys, so marked
        # states are NOT simply replaceable wholesale: treating them
        # that way would make loop joins last-writer-wins and the
        # worklist would ping-pong between predecessor states forever.
        if _TOP in a and len(a) == 1:
            return dict(b)
        if _TOP in b and len(b) == 1:
            return dict(a)
        a_top = _TOP in a
        b_top = _TOP in b
        out = {}
        for name in set(a) | set(b):
            if name == _TOP:
                continue
            if name not in a:
                out[name] = b[name] if a_top else NAC
            elif name not in b:
                out[name] = a[name] if b_top else NAC
            else:
                value, other = a[name], b[name]
                if value is other or (value is not NAC
                                      and other is not NAC
                                      and value == other):
                    out[name] = value
                else:
                    out[name] = NAC
        if a_top and b_top:
            out[_TOP] = True
        return out

    def equals(self, a, b):
        if set(a) != set(b):
            return False
        for name, value in a.items():
            other = b[name]
            if value is NAC or other is NAC:
                if value is not other:
                    return False
            elif value != other:
                return False
        return True

    def copy(self, state):
        return dict(state)

    @staticmethod
    def wipe(state):
        """Forget every constant (call from ``effects`` on havoc)."""
        state.clear()

    def value_of(self, state, name):
        """The proven constant for ``name``, or :data:`NAC`."""
        if _TOP in state:
            return NAC
        return state.get(name, NAC)

    def transfer(self, stmt, state):
        self._effects(stmt, state)
        return state
