"""Finding Wafe scripts inside other files.

Wafe scripts rarely live alone: the examples embed them in Python
string literals passed to ``run_script``, and the docs quote them in
fenced code blocks.  This module pulls those scripts out *with their
file positions* so diagnostics point into the real file, and harvests
``register_command`` calls so application-registered commands are not
reported as unknown.

Python extraction is purely syntactic (:mod:`ast`): plain string
literals are taken as-is; ``"..." % args`` templates are taken from the
literal left operand with every format spec overwritten by ``0`` of the
same length (positions stay exact, and a ``%s`` placeholder never
collides with Wafe's percent codes); f-string literal parts are joined
with ``0`` standing in for interpolations.
"""

import ast
import re

#: Methods whose first string argument is a Wafe/Tcl script.
SCRIPT_CALLS = frozenset(("run_script", "run_string", "run_command_line"))

#: Methods whose first string argument names an application command.
REGISTER_CALLS = frozenset(("register_command", "register"))

#: Markdown fence languages treated as Wafe script.
FENCE_LANGUAGES = frozenset(("tcl", "wafe"))

_FORMAT_SPEC = re.compile(
    r"%(?:\([^)]*\))?[-#0 +]*(?:\d+|\*)?(?:\.(?:\d+|\*))?"
    r"[diouxXeEfFgGcrsa%]")


class Chunk:
    """One extracted script with its base position in the host file."""

    __slots__ = ("text", "line", "col")

    def __init__(self, text, line=1, col=1):
        self.text = text
        self.line = line
        self.col = col


def _neutralize_format(template):
    """Overwrite Python %-format specs with same-length ``0`` runs so
    they cannot be mistaken for Wafe percent codes and positions of
    everything else stay exact."""
    return _FORMAT_SPEC.sub(lambda m: "0" * len(m.group(0)), template)


def _string_argument(node):
    """(text, approximate) for an argument node carrying a script, or
    (None, False) when it is not statically known."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod) \
            and isinstance(node.left, ast.Constant) \
            and isinstance(node.left.value, str):
        return _neutralize_format(node.left.value), False
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("0")
        return "".join(parts), True
    return None, False


def _call_name(node):
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def extract_python(source):
    """(chunks, extra_commands) from Python source.

    Chunks are anchored at the string literal's position (the content
    begins after the opening quote, so columns inside the first line
    are offset by the quote; lines are exact for single-line literals
    and for subsequent physical lines of multi-line literals only when
    the literal is triple-quoted without escapes -- close enough to
    land the reader on the right call).
    """
    tree = ast.parse(source)
    chunks = []
    extra = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in SCRIPT_CALLS and node.args:
            arg = node.args[0]
            text, __ = _string_argument(arg)
            if text is not None:
                chunks.append(Chunk(text, arg.lineno, arg.col_offset + 2))
        elif name in REGISTER_CALLS and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                extra.add(arg.value)
    return chunks, extra


_FENCE = re.compile(r"^\s*```\s*(\w*)\s*$")


def extract_markdown(source):
    """Chunks for every \\```tcl / \\```wafe fenced block."""
    chunks = []
    fence_language = None
    block = []
    block_line = 0
    for lineno, line in enumerate(source.splitlines(), 1):
        match = _FENCE.match(line)
        if fence_language is None:
            if match and match.group(1).lower() in FENCE_LANGUAGES:
                fence_language = match.group(1).lower()
                block = []
                block_line = lineno + 1
        elif match and not match.group(1):
            chunks.append(Chunk("\n".join(block) + "\n", block_line, 1))
            fence_language = None
        else:
            block.append(line)
    return chunks


def extract_chunks(path, source):
    """(chunks, extra_commands) for a file, dispatched on extension."""
    if path.endswith(".py"):
        return extract_python(source)
    if path.endswith((".md", ".markdown")):
        return extract_markdown(source), set()
    return [Chunk(source)], set()
