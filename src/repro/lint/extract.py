"""Finding Wafe scripts inside other files.

Wafe scripts rarely live alone: the examples embed them in Python
string literals passed to ``run_script``, and the docs quote them in
fenced code blocks.  This module pulls those scripts out *with their
file positions* so diagnostics point into the real file, and harvests
``register_command`` calls so application-registered commands are not
reported as unknown.

Python extraction is purely syntactic (:mod:`ast`): plain string
literals are taken as-is; ``"..." % args`` templates are taken from the
literal left operand with every format spec overwritten by a ``$0...``
variable reference of the same length (positions stay exact, and the
analyzer's existing dynamic-name conservatism kicks in -- a
placeholder in command or widget-name position silences the dependent
checks instead of reporting a bogus literal); f-string literal parts
are joined the same way.  ``%%`` is left alone: it reads as the
literal-percent code, which is valid everywhere.

A literal is not harvested at all when a ``# wafelint: skip`` comment
sits on the call's line, the string's own line, or a comment-only
line directly above the call -- the escape hatch for
deliberately-broken scripts in negative tests.  (A *trailing* pragma
on the previous line belongs to that line's call and does not bleed
downward.)
"""

import ast
import re

#: Methods whose first string argument is a Wafe/Tcl script.
SCRIPT_CALLS = frozenset(("run_script", "run_string", "run_command_line"))

#: Additionally harvested with ``--harvest-eval``: raw interpreter
#: evals, common in tests.  Off by default because test corpora are
#: full of deliberately hostile scripts.
EVAL_CALLS = frozenset(("eval",))

#: Methods whose first string argument names an application command.
REGISTER_CALLS = frozenset(("register_command", "register"))

#: Markdown fence languages treated as Wafe script.
FENCE_LANGUAGES = frozenset(("tcl", "wafe"))

_FORMAT_SPEC = re.compile(
    r"%(?:\([^)]*\))?[-#0 +]*(?:\d+|\*)?(?:\.(?:\d+|\*))?"
    r"[diouxXeEfFgGcrsa%]")


class Chunk:
    """One extracted script with its base position in the host file.

    ``embedded`` marks chunks harvested out of a host program (Python
    string literals): the host runs them interleaved with arbitrary
    interpreter mutations -- ``set_var`` calls, backend processes
    sending ``%set`` protocol lines over a pipe -- so flow analysis
    must assume any variable may already be defined when the chunk
    starts.  Whole script files and Markdown fences (self-contained
    examples) are not embedded.
    """

    __slots__ = ("text", "line", "col", "embedded")

    def __init__(self, text, line=1, col=1, embedded=False):
        self.text = text
        self.line = line
        self.col = col
        self.embedded = embedded


def _dynamic_marker(length):
    """A ``$0...`` variable reference of exactly ``length`` chars."""
    return "$" + "0" * (length - 1) if length > 1 else "$"


def _neutralize_format(template):
    """Overwrite Python %-format specs with same-length ``$0...``
    variable references, so the analyzer treats the word as dynamic
    (like ``$cmd``) rather than as a bogus literal, and positions of
    everything else stay exact.  ``%%`` stays literal: it denotes a
    single ``%`` and reads as the valid-everywhere percent code."""
    return _FORMAT_SPEC.sub(
        lambda m: m.group(0) if m.group(0) == "%%"
        else _dynamic_marker(len(m.group(0))), template)


def _string_argument(node):
    """(text, approximate) for an argument node carrying a script, or
    (None, False) when it is not statically known."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod) \
            and isinstance(node.left, ast.Constant) \
            and isinstance(node.left.value, str):
        return _neutralize_format(node.left.value), False
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("$0")
        return "".join(parts), True
    return None, False


def _call_name(node):
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


_SKIP_PRAGMA = re.compile(r"#\s*wafelint:\s*skip")


def _line_has_pragma(lines, lineno, comment_only=False):
    if not 0 < lineno <= len(lines):
        return False
    line = lines[lineno - 1]
    if comment_only and not line.lstrip().startswith("#"):
        # A trailing pragma belongs to *that* line's call; it must not
        # bleed into the statement below it.
        return False
    return bool(_SKIP_PRAGMA.search(line))


def _skipped(lines, call_lineno, arg_lineno):
    return (_line_has_pragma(lines, call_lineno)
            or _line_has_pragma(lines, arg_lineno)
            or _line_has_pragma(lines, call_lineno - 1, comment_only=True))


def extract_python(source, harvest_eval=False):
    """(chunks, extra_commands) from Python source.

    Chunks are anchored at the string literal's position (the content
    begins after the opening quote, so columns inside the first line
    are offset by the quote; lines are exact for single-line literals
    and for subsequent physical lines of multi-line literals only when
    the literal is triple-quoted without escapes -- close enough to
    land the reader on the right call).  With ``harvest_eval`` the
    first arguments of bare ``eval`` calls are harvested too.
    """
    tree = ast.parse(source)
    lines = source.splitlines()
    script_calls = SCRIPT_CALLS | EVAL_CALLS if harvest_eval \
        else SCRIPT_CALLS
    chunks = []
    extra = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in script_calls and node.args:
            arg = node.args[0]
            if _skipped(lines, node.lineno, arg.lineno):
                continue
            text, __ = _string_argument(arg)
            if text is not None:
                chunks.append(Chunk(text, arg.lineno, arg.col_offset + 2,
                                    embedded=True))
        elif name in REGISTER_CALLS and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                extra.add(arg.value)
    return chunks, extra


_FENCE = re.compile(r"^\s*```\s*(\w*)\s*$")


def extract_markdown(source):
    """Chunks for every \\```tcl / \\```wafe fenced block."""
    chunks = []
    fence_language = None
    block = []
    block_line = 0
    for lineno, line in enumerate(source.splitlines(), 1):
        match = _FENCE.match(line)
        if fence_language is None:
            if match and match.group(1).lower() in FENCE_LANGUAGES:
                fence_language = match.group(1).lower()
                block = []
                block_line = lineno + 1
        elif match and not match.group(1):
            chunks.append(Chunk("\n".join(block) + "\n", block_line, 1))
            fence_language = None
        else:
            block.append(line)
    return chunks


def extract_chunks(path, source, harvest_eval=False):
    """(chunks, extra_commands) for a file, dispatched on extension."""
    if path.endswith(".py"):
        return extract_python(source, harvest_eval=harvest_eval)
    if path.endswith((".md", ".markdown")):
        return extract_markdown(source), set()
    return [Chunk(source)], set()
