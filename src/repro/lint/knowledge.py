"""The linter's ground truth, assembled from the repo's own tables.

Nothing here is hand-maintained: the command surface comes from the
same sources the runtime registers commands from (the Tcl builtin
modules, the handwritten Wafe command module, the codegen spec files),
widget resources come from the widget classes' ``RESOURCES`` tables,
and percent-code validity comes from :mod:`repro.core.percent`.  If a
spec or a class table changes, the linter follows automatically.
"""

from repro.codegen.registry import registry_for
from repro.core import commands as _wafe_commands
from repro.core.percent import ACTION_CODE_EVENTS, CALLBACK_CODES
from repro.core.safemode import SAFE_HIDDEN_COMMANDS
from repro.core.predefined import PREDEFINED_CALLBACKS
from repro.tcl import Interp
from repro.xt.resources import R_CALLBACK
from repro.xt.shell import ApplicationShell

#: Percent codes valid in any callback context (besides class-specific
#: ones): %w (widget name) and %% (literal percent).
CALLBACK_UNIVERSAL_CODES = frozenset("w%")

#: Every class-specific callback code that exists at all, used when the
#: receiving widget class cannot be determined statically.
ALL_CALLBACK_CODES = frozenset(
    code for table in CALLBACK_CODES.values() for code in table)


def _tcl_builtin_names():
    """The builtin command table, harvested from a throwaway Interp."""
    return frozenset(Interp(register_builtins=True).commands)


class _CommandRecorder:
    """Stands in for a Wafe instance to harvest handwritten command
    registrations without constructing a display connection."""

    def __init__(self):
        self.names = []

    def register_command(self, name, func):
        self.names.append(name)


def _handwritten_names():
    recorder = _CommandRecorder()
    _wafe_commands.register(recorder)
    # The alias pair Wafe._register_commands adds directly.
    recorder.names.extend(["sV", "gV"])
    return frozenset(recorder.names)


def _class_tables(build):
    """CLASS_NAME -> widget class for the build (plus the shells every
    build has: topLevel and ``applicationShell`` results)."""
    tables = {}
    if build in ("athena", "both"):
        from repro.xaw import ATHENA_CLASSES, PLOTTER_CLASSES

        tables.update(ATHENA_CLASSES)
        tables.update(PLOTTER_CLASSES)
    if build in ("motif", "both"):
        from repro.motif import MOTIF_CLASSES

        tables.update(MOTIF_CLASSES)
    tables["ApplicationShell"] = ApplicationShell
    return tables


class Knowledge:
    """Everything the analyzer can know without running the script."""

    def __init__(self, build="athena"):
        self.build = build
        self.builtins = _tcl_builtin_names()
        self.wafe_commands = _handwritten_names()
        if build == "both":
            self.registries = (registry_for("athena"), registry_for("motif"))
        else:
            self.registries = (registry_for(build),)
        self.classes = _class_tables(build)
        self.predefined_callbacks = frozenset(PREDEFINED_CALLBACKS)
        #: Commands hidden under --safe, with the reason each is
        #: dangerous (the same table the runtime hides from).
        self.safe_hidden = SAFE_HIDDEN_COMMANDS
        self.action_code_events = ACTION_CODE_EVENTS
        self.callback_codes = CALLBACK_CODES
        #: Union of every class's constraint resources, for attribute
        #: checks when the parent class is not statically known.
        names = set()
        for klass in self.classes.values():
            names.update(klass.class_constraint_map())
        self.all_constraint_names = frozenset(names)

    # ------------------------------------------------------------------
    # Commands

    def command_known(self, name):
        if name in self.builtins or name in self.wafe_commands:
            return True
        return any(name in registry for registry in self.registries)

    def creation_class(self, name):
        """Widget class name if ``name`` is a creation command."""
        for registry in self.registries:
            class_name = registry.widget_class_for(name)
            if class_name is not None:
                return class_name
        return None

    def spec_arity(self, name):
        """(arity, usage) for spec-defined function commands."""
        for registry in self.registries:
            arity = registry.arity_for(name)
            if arity is not None:
                return arity, registry.usage_for(name)
        return None, None

    def widget_arg_positions(self, name):
        """1-based argv positions that must name a live widget.

        Derived from the spec files (``in: Widget`` arguments) plus the
        handwritten resource commands; creation commands expect a live
        *parent* at position 2.  Used by W016 (use after destroy)."""
        for registry in self.registries:
            spec = registry.functions.get(name)
            if spec is not None:
                return tuple(
                    i + 1 for i, arg in enumerate(spec.arguments)
                    if arg.direction == "in" and arg.type == "Widget")
            if registry.is_creation(name):
                return (2,)
        if name in ("setValues", "sV", "getValues", "gV"):
            return (1,)
        return ()

    def out_var_positions(self, name):
        """1-based argv positions that receive a result into a Tcl
        variable (spec ``out:`` arguments).  Used by the flow rules:
        an out argument *assigns* the named variable."""
        for registry in self.registries:
            spec = registry.functions.get(name)
            if spec is not None:
                return tuple(i + 1 for i, arg in enumerate(spec.arguments)
                             if arg.direction == "out")
        return ()

    # ------------------------------------------------------------------
    # Widget classes and resources

    def widget_class(self, class_name):
        return self.classes.get(class_name)

    def resource_map(self, class_name):
        klass = self.classes.get(class_name)
        return klass.class_resource_map() if klass is not None else None

    def constraint_names(self, parent_class_name):
        """Constraint resource names the parent imposes; the union of
        all classes when the parent is unknown."""
        klass = self.classes.get(parent_class_name or "")
        if klass is not None:
            return frozenset(klass.class_constraint_map())
        return self.all_constraint_names

    def is_callback_resource(self, class_name, resource_name):
        resources = self.resource_map(class_name)
        if resources is None:
            return resource_name.endswith(("callback", "Callback", "Proc"))
        resource = resources.get(resource_name)
        return resource is not None and resource.type == R_CALLBACK

    def action_names(self, class_name):
        """Action procs usable in translations on a class (plus the
        global ``exec`` action Wafe registers on every app)."""
        klass = self.classes.get(class_name or "")
        if klass is None:
            return None
        names = set(klass.class_actions())
        names.add("exec")
        return names

    def callback_codes_for(self, class_name, resource_name):
        """Valid class-specific percent codes for a callback resource,
        walking the class hierarchy like the runtime lookup does."""
        klass = self.classes.get(class_name or "")
        if klass is None:
            return None
        for ancestor in klass.__mro__:
            name = ancestor.__dict__.get("CLASS_NAME")
            if name is None:
                continue
            table = self.callback_codes.get((name, resource_name))
            if table is not None:
                return frozenset(table)
        return frozenset()


_KNOWLEDGE_CACHE = {}


def knowledge_for(build="athena"):
    """Cached per-build :class:`Knowledge` (tables are immutable)."""
    knowledge = _KNOWLEDGE_CACHE.get(build)
    if knowledge is None:
        knowledge = _KNOWLEDGE_CACHE[build] = Knowledge(build)
    return knowledge
