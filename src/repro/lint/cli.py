"""The wafelint command line: ``python -m repro.lint file...``.

Files are linted according to their extension (``.tcl``/``.wafe``
whole, ``.py`` via embedded ``run_script`` literals, ``.md`` via
fenced ``tcl`` blocks); directories are walked recursively.  The exit
status is the contract CI keys on: 0 when clean or warnings only, 1
when any error-severity diagnostic was found, 2 when a file could not
be read or parsed at all.
"""

import argparse
import json
import os
import sys

from repro.lint.analyzer import Analyzer
from repro.lint.diagnostics import ERROR
from repro.lint.extract import extract_chunks
from repro.lint.knowledge import knowledge_for

#: Extensions picked up when walking a directory.
LINTABLE_EXTENSIONS = (".py", ".md", ".markdown", ".tcl", ".wafe")


def iter_files(paths):
    """Expand the path arguments: files as given, directories walked
    (sorted, hidden subdirectories skipped)."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    name for name in dirs if not name.startswith("."))
                for name in sorted(files):
                    if name.endswith(LINTABLE_EXTENSIONS):
                        yield os.path.join(root, name)
        else:
            yield path


def lint_file(path, knowledge, extra_commands=(), safe_profile=False,
              harvest_eval=False):
    """All diagnostics for one file.  Chunks extracted from the file
    share one analyzer so a proc defined in an early ``run_script``
    call is known in a later one."""
    with open(path, "r") as handle:
        source = handle.read()
    chunks, harvested = extract_chunks(path, source,
                                       harvest_eval=harvest_eval)
    analyzer = Analyzer(knowledge, filename=path,
                        extra_commands=set(extra_commands) | harvested,
                        safe_profile=safe_profile)
    for chunk in chunks:
        analyzer.collect(chunk.text, chunk.line, chunk.col,
                         embedded=chunk.embedded)
    for chunk in chunks:
        analyzer.analyze(chunk.text, chunk.line, chunk.col)
    return analyzer.diagnostics()


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="wafelint: static analysis for Wafe/Tcl scripts")
    parser.add_argument("paths", nargs="+", metavar="file",
                        help="script, Python, or Markdown file; "
                        "directories are walked recursively")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--build", choices=("athena", "motif", "both"),
                        default="athena",
                        help="command surface to check against")
    parser.add_argument("--extra-commands", default="", metavar="NAMES",
                        help="comma-separated application-registered "
                        "command names to accept")
    parser.add_argument("--safe-profile", action="store_true",
                        help="flag commands that are hidden when the "
                        "frontend runs under --safe (rule W011)")
    parser.add_argument("--harvest-eval", action="store_true",
                        help="also harvest string literals passed to "
                        "bare eval() calls (off by default: test "
                        "corpora eval deliberately hostile scripts)")
    args = parser.parse_args(argv)

    extra = tuple(name for name in args.extra_commands.split(",") if name)
    knowledge = knowledge_for(args.build)
    diagnostics = []
    status = 0
    files = 0
    for path in iter_files(args.paths):
        files += 1
        try:
            diagnostics.extend(lint_file(path, knowledge, extra,
                                         safe_profile=args.safe_profile,
                                         harvest_eval=args.harvest_eval))
        except OSError as err:
            print("%s: %s" % (path, err.strerror or err), file=sys.stderr)
            status = 2
        except SyntaxError as err:
            print("%s:%s: cannot parse Python source: %s"
                  % (path, err.lineno or 0, err.msg), file=sys.stderr)
            status = 2

    errors = sum(1 for d in diagnostics if d.severity == ERROR)
    if args.format == "json":
        # Versioned envelope (schema 2): diagnostics are sorted and
        # deduplicated by the analyzer, so CI artifacts diff cleanly.
        json.dump({
            "schema": 2,
            "files": files,
            "errors": errors,
            "warnings": len(diagnostics) - errors,
            "diagnostics": [d.as_dict() for d in diagnostics],
        }, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format())
        print("%d file%s checked: %d error%s, %d warning%s"
              % (files, "" if files == 1 else "s",
                 errors, "" if errors == 1 else "s",
                 len(diagnostics) - errors,
                 "" if len(diagnostics) - errors == 1 else "s"))
    if errors:
        status = max(status, 1)
    return status
