"""Diagnostic objects and the rule table.

A diagnostic pins a rule code to an exact ``file:line:col`` position.
Rule codes are stable identifiers (tests, CI filters, and editor
integrations key on them); the human-readable message may evolve.
"""

ERROR = "error"
WARNING = "warning"

#: code -> (slug, default severity, one-line description).
RULES = {
    "W001": ("unknown-command",
             "command is neither a builtin, a generated toolkit command, "
             "a proc defined in the script, nor application-registered"),
    "W002": ("arity-mismatch",
             "wrong number of arguments for a proc or spec-defined "
             "command"),
    "W003": ("unknown-resource",
             "widget resource name not present in the widget class's "
             "resource table"),
    "W004": ("invalid-percent-code",
             "percent code invalid for the event type (the paper's "
             "action-code matrix) or unknown"),
    "W005": ("percent-context-mismatch",
             "callback-only percent code in action position, or "
             "action-only code in callback position"),
    "W006": ("unbalanced-delimiter",
             "missing close brace/bracket/quote or extra characters "
             "after one"),
    "W007": ("bad-translation",
             "malformed translation table, unknown event type, or "
             "unknown action name"),
    "W008": ("suspicious-set",
             "`set` with three or more arguments (missing quoting?)"),
    "W009": ("unbraced-expr",
             "expr/condition with unbraced $-substitution (double "
             "substitution; defeats expression compilation)"),
    "W010": ("unreachable-code",
             "command can never run (follows return/break/continue/"
             "error in the same block)"),
    "W011": ("safe-mode-hidden",
             "command is hidden in safe mode and will fail at runtime "
             "under --safe (only checked with --safe-profile)"),
    "W012": ("use-before-set",
             "variable is read on a path where no assignment can have "
             "reached it (can't read at runtime)"),
    "W013": ("unreachable-flow",
             "no control-flow path from the start of the script "
             "reaches this command (all branches return, say)"),
    "W014": ("dead-assignment",
             "assigned value is overwritten or discarded on every "
             "path before anything reads it"),
    "W015": ("constant-condition",
             "loop/branch condition is provably constant; an "
             "always-true loop without break only stops at the eval "
             "limit"),
    "W016": ("use-after-destroy",
             "widget handle may already be destroyed (destroyWidget "
             "on a preceding path) when used here"),
    "W017": ("proc-arity-mismatch",
             "user proc called with an argument count no definition "
             "accepts (checked across the whole file)"),
}


class Diagnostic:
    """One finding: rule code, severity, message, exact position."""

    __slots__ = ("code", "severity", "message", "file", "line", "col")

    def __init__(self, code, message, file="<script>", line=1, col=1,
                 severity=None):
        self.code = code
        self.severity = severity if severity is not None else ERROR
        self.message = message
        self.file = file
        self.line = line
        self.col = col

    @property
    def rule_name(self):
        return RULES[self.code][0]

    def format(self):
        """``file:line:col: severity: message [Wnnn rule-name]``"""
        return "%s:%d:%d: %s: %s [%s %s]" % (
            self.file, self.line, self.col, self.severity, self.message,
            self.code, self.rule_name)

    def as_dict(self):
        return {
            "code": self.code,
            "rule": self.rule_name,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
        }

    def __repr__(self):  # pragma: no cover - debugging aid
        return "Diagnostic(%s)" % self.format()
