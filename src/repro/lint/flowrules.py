"""Flow-sensitive lint rules W012..W017.

These rules run after the lexical passes (W001..W011), over the
basic-block graphs :mod:`repro.lint.cfg` builds and the solvers in
:mod:`repro.lint.dataflow`:

* W012 -- a variable is read on a path where *no* assignment can have
  reached it (forward may-assigned analysis).  Reported as an error:
  the interpreter would raise ``can't read "x": no such variable``.
* W013 -- a command no control-flow path reaches at all (both branches
  of an ``if`` return, say).  W010 already covers the within-block
  case of code following a terminator.
* W014 -- a ``set`` whose value is overwritten on every path before
  anything reads it (backward liveness with definite-kill).
* W015 -- a loop or branch condition that constant propagation proves
  always true or always false; an always-true loop with no reachable
  ``break`` can only stop at the eval limit (the PR-5 watchdog).
* W016 -- a widget handle used on some path after ``destroyWidget``
  (forward may-destroyed analysis, widget argument positions from the
  spec registry).
* W017 -- a user ``proc`` called with an argument count no definition
  of that proc accepts (flow-insensitive over the whole file, so a
  call above the definition still checks).

Every rule is tuned for zero false positives over genuine Wafe
scripts: unknown commands, ``eval``/``uplevel``/``source``, dynamic
variable names, and procs that might ``upvar`` all degrade to havoc
("anything may be assigned / read"), which silences the rule rather
than guessing.  Reads inside ``catch`` are exempt from W012/W016 --
probing with catch is how Wafe scripts legitimately test state.
"""

from repro.lint import cfg, dataflow
from repro.lint.diagnostics import ERROR, WARNING, Diagnostic
from repro.tcl.compile import _fold_expr
from repro.tcl.errors import TclError
from repro.tcl.expr import compile_expr, is_true
from repro.tcl.lists import string_to_list
from repro.tcl.parser import CMDSUB, VARSUB, parse_script

#: Variables the runtime itself maintains, visible from the first
#: command of any script (repro.core seeds transferStatus; the
#: interpreter maintains errorInfo/errorCode).
ALWAYS_DEFINED = frozenset(("errorInfo", "errorCode", "transferStatus"))

#: Commands that evaluate dynamically-constructed scripts: anything may
#: be assigned or read behind them.
_HAVOC_COMMANDS = frozenset(("eval", "uplevel", "source", "subst"))

#: Builtins whose variable reads are fully visible in their parse tree
#: (no hidden ``upvar``-style access).  Any command outside this set
#: that is not spec-known is treated as possibly reading everything.
_VISIBLE_READERS = frozenset((
    "set", "unset", "incr", "append", "lappend", "puts", "expr",
    "return", "error", "break", "continue", "global", "upvar", "proc",
    "if", "while", "for", "foreach", "switch", "case", "catch", "time",
    "info", "string", "list", "llength", "lindex", "lrange", "linsert",
    "lsearch", "lsort", "split", "join", "concat", "format", "scan",
    "rename", "trace",
))

#: Structural commands the CFG builder already split into blocks: their
#: script arguments must not be re-walked as part of the statement.
_SPLIT_COMMANDS = frozenset((
    "if", "while", "for", "foreach", "catch", "time", "switch", "proc",
    "addWorkProc", "addTimeOut", "ownSelection",
    "setCommunicationVariable",
))

_MAX_EFFECT_DEPTH = 6


class Effects:
    """What one statement may do to variables.

    ``checked`` reads raise at runtime when the variable is unset
    (plain ``$x`` substitution); ``reads`` additionally includes
    auto-vivifying accesses (``lappend``/``append`` targets) that only
    matter for liveness.  ``writes`` are may-assignments, ``kills``
    are ``unset``s, ``havoc`` means "may assign anything", and
    ``reads_all`` means "may read anything" (kills liveness-based
    conclusions).  ``cmdsub`` records that a command substitution
    appears anywhere in the statement.
    """

    __slots__ = ("checked", "reads", "writes", "kills", "havoc",
                 "reads_all", "cmdsub")

    def __init__(self):
        self.checked = set()
        self.reads = set()
        self.writes = set()
        self.kills = set()
        self.havoc = False
        self.reads_all = False
        self.cmdsub = False

    def read(self, name, checked):
        base = name.split("(", 1)[0]
        self.reads.add(base)
        if checked:
            self.checked.add(base)


def _literal(word):
    return word.literal_value() if word.is_literal() else None


class _FlowContext:
    """File-wide facts shared by every graph's rule run."""

    def __init__(self, kb, filename, extra_commands=()):
        self.kb = kb
        self.filename = filename
        self.extra_commands = frozenset(extra_commands)
        #: proc name -> [(min_args, max_args_or_None), ...] per def.
        self.proc_defs = {}
        #: proc name -> (caller_writes, havoc) summary.
        self.proc_summaries = {}
        #: Communication/traced variables: assigned behind the
        #: frontend's back, so always-defined and never const-tracked.
        self.external_vars = set()
        self.rename_seen = False
        self.diagnostics = []
        self._effects = {}

    def report(self, code, message, line, col, severity):
        self.diagnostics.append(Diagnostic(
            code, message, file=self.filename, line=line, col=col,
            severity=severity))

    def always_defined(self):
        return ALWAYS_DEFINED | self.external_vars

    # -- effects extraction --------------------------------------------

    def effects_of(self, stmt):
        eff = self._effects.get(stmt)
        if eff is None:
            eff = self._effects[stmt] = self._compute_effects(stmt)
        return eff

    def _compute_effects(self, stmt):
        eff = Effects()
        if stmt.synthetic is not None:
            kind, payload = stmt.synthetic
            if kind in ("def", "assume"):
                eff.writes.add(payload)
            elif kind == "cond":
                self._expr_effects(payload, eff, 0, checked=True)
            return eff
        if stmt.havoc:
            eff.havoc = True
            eff.reads_all = True
            for word in stmt.words:
                self._word_effects(word, eff, 0, checked=True)
            return eff
        name = stmt.name
        if name in _SPLIT_COMMANDS:
            # Bodies/conds live in their own blocks and synthetic
            # statements; only substitution on the command line counts.
            for word in stmt.words:
                self._word_effects(word, eff, 0, checked=True)
            for i, cond in enumerate(stmt.cond_texts):
                # Only the first condition of an if-chain is evaluated
                # unconditionally on this path.
                self._expr_effects(cond, eff, 0, checked=(i == 0))
            return eff
        self._command_effects(name, stmt.words, eff, 0, checked=True)
        return eff

    def _word_effects(self, word, eff, depth, checked):
        if word.braced:
            return  # braces suppress all substitution
        self._part_effects(word.parts, eff, depth, checked)

    def _part_effects(self, parts, eff, depth, checked):
        for kind, payload in parts:
            if kind == VARSUB:
                name, index_parts = payload
                eff.read(name, checked)
                if index_parts:
                    self._part_effects(index_parts, eff, depth, checked)
            elif kind == CMDSUB:
                eff.cmdsub = True
                self._script_effects(payload, eff, depth + 1, checked)

    def _script_effects(self, script, eff, depth, checked):
        if depth > _MAX_EFFECT_DEPTH:
            eff.havoc = True
            eff.reads_all = True
            return
        try:
            commands = parse_script(script)
        except TclError:
            eff.havoc = True
            eff.reads_all = True
            return
        for command in commands:
            if not command.words:
                continue
            name = _literal(command.words[0])
            self._command_effects(name, command.words, eff, depth,
                                  checked)

    def _expr_effects(self, text, eff, depth, checked):
        try:
            ast = compile_expr(text)
        except TclError:
            return
        self._expr_node_effects(ast, eff, depth, checked)

    def _expr_node_effects(self, node, eff, depth, checked):
        kind = node[0]
        if kind == "varref":
            name, index_parts = node[1]
            if index_parts is None:
                eff.read(name, checked)
            else:
                eff.read(name, checked)
                self._part_effects(index_parts, eff, depth, checked)
        elif kind == "cmdref":
            eff.cmdsub = True
            self._script_effects(node[1], eff, depth + 1, checked)
        elif kind == "quoted":
            for piece in node[1]:
                if isinstance(piece, tuple):
                    self._expr_node_effects(piece, eff, depth, checked)
        elif kind == "unary":
            self._expr_node_effects(node[2], eff, depth, checked)
        elif kind == "binary":
            self._expr_node_effects(node[2], eff, depth, checked)
            self._expr_node_effects(node[3], eff, depth, checked)
        elif kind == "andor":
            self._expr_node_effects(node[2], eff, depth, checked)
            # The right arm may be skipped by short-circuit: a read
            # there is not guaranteed to happen on this path.
            self._expr_node_effects(node[3], eff, depth, False)
        elif kind == "ternary":
            self._expr_node_effects(node[1], eff, depth, checked)
            self._expr_node_effects(node[2], eff, depth, False)
            self._expr_node_effects(node[3], eff, depth, False)
        elif kind == "func":
            for arg in node[2]:
                self._expr_node_effects(arg, eff, depth, checked)

    def _command_effects(self, name, words, eff, depth, checked):
        """One command's effects (top-level statement or nested inside
        a command substitution)."""
        if name is None or name in _HAVOC_COMMANDS:
            eff.havoc = True
            eff.reads_all = True
            for word in words:
                self._word_effects(word, eff, depth, checked)
            return
        if name in _SPLIT_COMMANDS and depth > 0:
            if name == "catch":
                # [catch {...} msg] is the probing idiom: the body's
                # reads never raise, the message variable is assigned.
                for word in words:
                    self._word_effects(word, eff, depth, checked)
                if len(words) >= 2:
                    body = _literal(words[1])
                    if body is not None:
                        self._script_effects(body, eff, depth + 1,
                                             False)
                    else:
                        eff.havoc = True
                        eff.reads_all = True
                if len(words) >= 3:
                    msgvar = _literal(words[2])
                    if msgvar is not None:
                        eff.writes.add(msgvar)
                    else:
                        eff.havoc = True
                return
            # Control flow inside a command substitution: too dynamic
            # to model statement-by-statement.
            eff.havoc = True
            eff.reads_all = True
            for word in words:
                self._word_effects(word, eff, depth, checked)
            return
        for word in words:
            self._word_effects(word, eff, depth, checked)
        if name == "set":
            target = _literal(words[1]) if len(words) >= 2 else None
            if target is None:
                if len(words) >= 2:
                    eff.havoc = True  # dynamic variable name
            elif len(words) >= 3:
                eff.writes.add(target.split("(", 1)[0])
            else:
                eff.read(target, checked)
        elif name == "incr":
            target = _literal(words[1]) if len(words) >= 2 else None
            if target is None:
                eff.havoc = True
            else:
                eff.read(target, checked)
                eff.writes.add(target.split("(", 1)[0])
        elif name in ("append", "lappend"):
            target = _literal(words[1]) if len(words) >= 2 else None
            if target is None:
                eff.havoc = True
            else:
                # Auto-vivifies: a liveness read, never a checked one.
                eff.read(target, False)
                eff.writes.add(target.split("(", 1)[0])
        elif name == "unset":
            for word in words[1:]:
                target = _literal(word)
                if target is not None:
                    eff.kills.add(target.split("(", 1)[0])
        elif name in ("global", "upvar"):
            for word in words[1:]:
                target = _literal(word)
                if target is not None:
                    eff.writes.add(target.split("(", 1)[0])
        elif name == "scan":
            for word in words[3:]:
                target = _literal(word)
                if target is None:
                    eff.havoc = True
                else:
                    eff.writes.add(target)
        elif name in ("getValues", "gV"):
            for word in words[3::2]:
                target = _literal(word)
                if target is None:
                    eff.havoc = True
                else:
                    eff.writes.add(target)
        elif name == "expr":
            if all(word.braced or word.is_literal() for word in words[1:]):
                text = " ".join(_literal(word) for word in words[1:])
                self._expr_effects(text, eff, depth, checked)
        elif name in self.proc_defs:
            summary = self.proc_summaries.get(name)
            if summary is None or summary[1]:
                eff.havoc = True
            else:
                eff.writes.update(summary[0])
            eff.reads_all = True  # the proc may read globals
        elif name in self.extra_commands:
            eff.havoc = True
            eff.reads_all = True
        elif self.kb is not None and self.kb.command_known(name):
            for position in self.kb.out_var_positions(name):
                target = _literal(words[position]) \
                    if position < len(words) else None
                if target is None:
                    eff.havoc = True
                else:
                    eff.writes.add(target)
            if name not in _VISIBLE_READERS \
                    and not self.kb.out_var_positions(name) \
                    and name not in self.kb.wafe_commands \
                    and self.kb.creation_class(name) is None \
                    and self.kb.spec_arity(name) == (None, None):
                # A builtin outside the visible-reader whitelist: be
                # honest about not modeling it.
                eff.reads_all = True
        else:
            # Unknown command (W001's finding): total havoc.
            eff.havoc = True
            eff.reads_all = True


# ----------------------------------------------------------------------
# File-level orchestration


def analyze_flow(chunks, callbacks, kb, filename, extra_commands=()):
    """Run W012..W017 over one file's scripts.

    ``chunks`` are the top-level script regions in source order as
    ``(source, line, col, embedded)`` tuples, ``callbacks`` the
    callback-resource scripts the analyzer found as ``(source, line,
    col)`` tuples.  An ``embedded`` chunk was harvested out of a host
    program which may mutate interpreter state between chunks (pipes,
    ``set_var``), so its entry boundary is "anything may be defined".
    Returns the list of :class:`Diagnostic` findings.
    """
    ctx = _FlowContext(kb, filename, extra_commands)
    chunk_graphs = [cfg.build_graph(text, line, col)
                    for text, line, col, __ in chunks]
    embedded_flags = [embedded for __, __, __, embedded in chunks]
    callback_graphs = [cfg.build_graph(text, line, col,
                                       kind=cfg.CALLBACK,
                                       name="<callback>")
                       for text, line, col in callbacks]
    all_graphs = []
    for root in chunk_graphs + callback_graphs:
        all_graphs.extend(root.walk())

    _prescan(ctx, all_graphs)
    _summarize_procs(ctx, all_graphs)
    _check_proc_arity(ctx, all_graphs)

    assigned_before = set(ctx.always_defined())
    for graph, embedded in zip(chunk_graphs, embedded_flags):
        if embedded:
            boundary = assigned_before | {dataflow.SetUnion.EVERYTHING}
        else:
            boundary = set(assigned_before)
        _check_graph(ctx, graph, boundary=boundary)
        assigned_before |= _possible_defs(ctx, graph)
        for sub in graph.walk():
            if sub.kind == cfg.PROC:
                _check_graph(ctx, sub,
                             boundary=set(sub.params))
            elif sub is not graph:
                _check_graph(
                    ctx, sub,
                    boundary={dataflow.SetUnion.EVERYTHING})
    for graph in callback_graphs:
        for sub in graph.walk():
            if sub.kind == cfg.PROC:
                _check_graph(ctx, sub, boundary=set(sub.params))
            else:
                _check_graph(
                    ctx, sub,
                    boundary={dataflow.SetUnion.EVERYTHING})
    return ctx.diagnostics


def _prescan(ctx, graphs):
    """File-wide facts that must be known before any rule runs."""
    for graph in graphs:
        for stmt in graph.stmts():
            name = stmt.name
            if name == "rename":
                ctx.rename_seen = True
            elif name == "setCommunicationVariable" \
                    and len(stmt.words) >= 2:
                var = _literal(stmt.words[1])
                if var is not None:
                    ctx.external_vars.add(var)
            elif name == "trace" and len(stmt.words) >= 3 \
                    and _literal(stmt.words[1]) in ("variable", "vdelete"):
                var = _literal(stmt.words[2])
                if var is not None:
                    ctx.external_vars.add(var)
            elif name == "proc" and len(stmt.words) == 4:
                pname = _literal(stmt.words[1])
                formals_text = _literal(stmt.words[2])
                if pname is None or formals_text is None:
                    continue
                try:
                    formals = string_to_list(formals_text)
                except TclError:
                    continue
                min_args = 0
                max_args = len(formals)
                for formal in formals:
                    if formal == "args" and formal == formals[-1]:
                        max_args = None
                        continue
                    try:
                        pieces = string_to_list(formal)
                    except TclError:
                        pieces = [formal]
                    if len(pieces) < 2:
                        min_args += 1
                ctx.proc_defs.setdefault(pname, []).append(
                    (min_args, max_args))


def _summarize_procs(ctx, graphs):
    """Which caller/global variables can a proc call assign?

    A proc body that uses ``upvar``/``uplevel``/``eval`` (or calls
    another proc) may write anything in the caller -> havoc summary.
    A body that declares ``global`` may write the globals it assigns;
    everything else writes nothing outside its own frame.
    """
    for graph in graphs:
        if graph.kind != cfg.PROC:
            continue
        writes = set()
        havoc = False
        globals_declared = False
        for stmt in graph.stmts():
            name = stmt.name
            if stmt.havoc or name is None \
                    or name in ("upvar", "uplevel", "eval", "source") \
                    or name in ctx.proc_defs:
                havoc = True
                break
            if name == "global":
                globals_declared = True
                for word in stmt.words[1:]:
                    target = _literal(word)
                    if target is None:
                        havoc = True
                    else:
                        writes.add(target)
            if _has_cmdsub(stmt):
                # A command substitution can run anything.
                havoc = True
                break
        if havoc:
            summary = (set(), True)
        elif globals_declared:
            summary = (writes, False)
        else:
            summary = (set(), False)
        # Multiple defs of one name: merge pessimistically.
        previous = ctx.proc_summaries.get(graph.name)
        if previous is not None:
            summary = (previous[0] | summary[0],
                       previous[1] or summary[1])
        ctx.proc_summaries[graph.name] = summary


def _has_cmdsub(stmt):
    if stmt.words is None:
        return False
    stack = [word.parts for word in stmt.words if not word.braced]
    while stack:
        for kind, payload in stack.pop():
            if kind == CMDSUB:
                return True
            if kind == VARSUB and payload[1]:
                stack.append(payload[1])
    return False


def _possible_defs(ctx, graph):
    """Names a chunk may have assigned once it has run (its deferred
    scripts and callbacks included -- they may fire before the next
    chunk arrives)."""
    defs = set()
    for sub in graph.walk():
        if sub.kind == cfg.PROC:
            continue  # proc bodies only run via calls (summarized)
        for stmt in sub.stmts():
            eff = ctx.effects_of(stmt)
            if eff.havoc:
                return {dataflow.SetUnion.EVERYTHING}
            defs |= eff.writes
    return defs


# ----------------------------------------------------------------------
# W017 -- proc arity (flow-insensitive)


def _check_proc_arity(ctx, graphs):
    if ctx.rename_seen or not ctx.proc_defs:
        return
    for graph in graphs:
        for stmt in graph.stmts():
            defs = ctx.proc_defs.get(stmt.name or "")
            if defs is None:
                continue
            argc = len(stmt.words) - 1
            if any(minimum <= argc
                   and (maximum is None or argc <= maximum)
                   for minimum, maximum in defs):
                continue
            expected = sorted(set(
                _expected_text(minimum, maximum)
                for minimum, maximum in defs))
            ctx.report(
                "W017",
                'proc "%s" called with %d argument%s, expects %s'
                % (stmt.name, argc, "" if argc == 1 else "s",
                   " or ".join(expected)),
                stmt.line, stmt.col, ERROR)


def _expected_text(minimum, maximum):
    if maximum is None:
        return "at least %d" % minimum
    if minimum == maximum:
        return "%d" % minimum
    return "%d to %d" % (minimum, maximum)


# ----------------------------------------------------------------------
# Per-graph rules


def _check_graph(ctx, graph, boundary):
    reachable = dataflow.reachable_blocks(graph)
    _check_unreachable(ctx, graph, reachable)
    _check_use_before_set(ctx, graph, reachable, boundary)
    _check_dead_assignment(ctx, graph, reachable)
    _check_constant_conditions(ctx, graph, reachable)
    _check_destroyed_widgets(ctx, graph, reachable)


def _first_real_stmt(block):
    for stmt in block.stmts:
        if stmt.synthetic is None:
            return stmt
    return None


def _check_unreachable(ctx, graph, reachable):
    """W013: blocks no edge path reaches from the entry."""
    for block in graph.blocks:
        if block in reachable or block.after_terminator:
            continue
        stmt = _first_real_stmt(block)
        if stmt is None:
            continue
        # Suppress cascades: only the first unreachable block of a
        # region is interesting, and within-block followers of a
        # terminator are W010's report.
        covered = False
        for pred in block.preds:
            if pred not in reachable and _first_real_stmt(pred):
                covered = True
            elif pred.after_terminator and pred.stmts:
                covered = True
        if covered:
            continue
        ctx.report(
            "W013",
            'unreachable code: no control-flow path reaches "%s"'
            % (stmt.name or "this command"),
            stmt.line, stmt.col, WARNING)


def _check_use_before_set(ctx, graph, reachable, boundary):
    """W012: a checked read with no reaching assignment on any path."""
    problem = dataflow.SetUnion(
        gen=lambda stmt: ctx.effects_of(stmt).writes,
        kill=lambda stmt: ctx.effects_of(stmt).kills,
        boundary_names=boundary,
        havoc=lambda stmt: ctx.effects_of(stmt).havoc)
    states = dataflow.solve(graph, problem)
    always = ctx.always_defined()
    for block in graph.blocks:
        if block not in reachable or block.in_catch:
            continue
        for stmt, state in dataflow.stmt_states(problem, block,
                                                states[block]):
            eff = ctx.effects_of(stmt)
            for name in sorted(eff.checked):
                if problem.contains(state, name) or name in always:
                    continue
                ctx.report(
                    "W012",
                    'variable "%s" is read here but never assigned on '
                    "any path (can't read \"%s\" at runtime)"
                    % (name, name),
                    stmt.line, stmt.col, ERROR)


def _liveness_uses(ctx, stmt):
    eff = ctx.effects_of(stmt)
    return eff.reads, eff.reads_all or eff.havoc


def _definite_kills(ctx, stmt):
    """Names a statement unconditionally overwrites: only a literal
    scalar ``set name value`` qualifies."""
    if stmt.synthetic is not None or stmt.name != "set" \
            or stmt.havoc or len(stmt.words) != 3:
        return ()
    target = _literal(stmt.words[1])
    if target is None or "(" in target:
        return ()
    return (target,)


def _check_dead_assignment(ctx, graph, reachable):
    """W014: a stored value no path reads before its overwrite."""
    problem = dataflow.Liveness(
        uses=lambda stmt: _liveness_uses(ctx, stmt),
        defs=lambda stmt: _definite_kills(ctx, stmt),
        # Top-level and callback variables outlive the script; only a
        # pure proc frame truly dies at exit.
        boundary_all=not (graph.kind == cfg.PROC
                          and _proc_frame_is_private(ctx, graph)))
    states = dataflow.solve(graph, problem)
    external = ctx.external_vars
    for block in graph.blocks:
        if block not in reachable or block.in_catch:
            continue
        for stmt, state in dataflow.stmt_states(problem, block,
                                                states[block]):
            targets = _definite_kills(ctx, stmt)
            if not targets:
                continue
            target = targets[0]
            if target in external:
                continue  # traces read it behind our back
            eff = ctx.effects_of(stmt)
            if eff.cmdsub or eff.havoc:
                continue  # the value expression has side effects
            # Backward walk: ``state`` is the liveness *after* the
            # statement in program order.
            if not dataflow.Liveness.is_live(state, target):
                ctx.report(
                    "W014",
                    'value assigned to "%s" is never read (overwritten '
                    "or discarded on every path)" % target,
                    stmt.line, stmt.col, WARNING)


def _proc_frame_is_private(ctx, graph):
    """True when nothing can observe a proc's locals after it returns
    (no upvar/global/uplevel aliasing, no havoc, no nested commands)."""
    summary = ctx.proc_summaries.get(graph.name)
    if summary is None or summary[1] or summary[0]:
        return False
    for stmt in graph.stmts():
        if stmt.havoc or stmt.name in ("global", "upvar"):
            return False
    return True


# -- W015 ---------------------------------------------------------------

#: Bare-literal conditions people write deliberately (`if 0 {...}` is
#: the classic Tcl block-comment idiom; `while 1` is handled separately
#: through the no-break check).
_DELIBERATE_CONSTS = frozenset(
    ("0", "1", "true", "false", "yes", "no", "on", "off"))


def _const_effects(ctx, lattice, stmt, state):
    eff = ctx.effects_of(stmt)
    if eff.havoc or eff.cmdsub:
        lattice.wipe(state)
        return
    if eff.reads_all and eff.writes:
        # A command we cannot fully model that writes variables.
        lattice.wipe(state)
        return
    for name in eff.writes | eff.kills:
        state[name] = dataflow.NAC
    value = _simple_set_value(stmt)
    if value is not None and stmt.words is not None:
        target = _literal(stmt.words[1])
        if target not in ctx.external_vars:
            state[target] = value


def _simple_set_value(stmt):
    """The literal value of a plain scalar ``set name value``."""
    if stmt.synthetic is not None or stmt.name != "set" \
            or stmt.havoc or stmt.words is None or len(stmt.words) != 3:
        return None
    target = _literal(stmt.words[1])
    value = _literal(stmt.words[2])
    if target is None or "(" in target or value is None:
        return None
    return value


def _fold_condition(lattice, state, text):
    """Truth value of a condition under proven constants, or None."""
    try:
        ast = compile_expr(text)
    except TclError:
        return None
    folded = _fold_expr(_substitute_consts(lattice, state, ast))
    if folded[0] != "val":
        return None
    value = folded[1]
    if isinstance(value, (int, float)):
        return value != 0
    try:
        return is_true(value)
    except TclError:
        return None


def _substitute_consts(lattice, state, node):
    kind = node[0]
    if kind == "varref":
        name, index_parts = node[1]
        if index_parts is None:
            value = lattice.value_of(state, name)
            if value is not dataflow.NAC:
                return ("val", value)
        return node
    if kind == "unary":
        return (kind, node[1],
                _substitute_consts(lattice, state, node[2]))
    if kind in ("binary", "andor"):
        return (kind, node[1],
                _substitute_consts(lattice, state, node[2]),
                _substitute_consts(lattice, state, node[3]))
    if kind == "ternary":
        return (kind,
                _substitute_consts(lattice, state, node[1]),
                _substitute_consts(lattice, state, node[2]),
                _substitute_consts(lattice, state, node[3]))
    if kind == "func":
        return (kind, node[1],
                [_substitute_consts(lattice, state, arg)
                 for arg in node[2]])
    return node


def _check_constant_conditions(ctx, graph, reachable):
    """W015: conditions proven constant by simple const propagation."""
    if not graph.loops and not graph.branches:
        return
    lattice = dataflow.ConstLattice(
        lambda stmt, state: _const_effects(ctx, lattice, stmt, state))
    states = dataflow.solve(graph, lattice)
    # Expand to per-statement states for the statements that carry
    # conditions (branch statements may sit mid-block).
    cond_states = {}
    interesting = set()
    for info in graph.branches:
        interesting.add(info.stmt)
    for loop in graph.loops:
        interesting.add(loop.head.stmts[0] if loop.head.stmts else None)
    for block in graph.blocks:
        if block not in reachable:
            continue
        if not any(stmt in interesting for stmt in block.stmts):
            continue
        for stmt, state in dataflow.stmt_states(lattice, block,
                                                states[block]):
            if stmt in interesting:
                cond_states[stmt] = dict(state)
    for info in graph.branches:
        state = cond_states.get(info.stmt)
        if state is None:
            continue
        for text, line, col in info.conds:
            if text.strip().lower() in _DELIBERATE_CONSTS:
                continue
            truth = _fold_condition(lattice, state, text)
            if truth is not None:
                ctx.report(
                    "W015",
                    'condition "%s" is always %s'
                    % (text, "true" if truth else "false"),
                    line, col, WARNING)
    for loop in graph.loops:
        if loop.cond_text is None or loop.head not in reachable:
            continue
        head_stmt = loop.head.stmts[0] if loop.head.stmts else None
        state = cond_states.get(head_stmt)
        if state is None:
            continue
        truth = _fold_condition(lattice, state, loop.cond_text)
        if truth is False:
            ctx.report(
                "W015",
                'loop condition "%s" is always false: the body never '
                "runs" % loop.cond_text,
                loop.cond_line, loop.cond_col, WARNING)
        elif truth and not _loop_can_stop(ctx, loop, reachable):
            ctx.report(
                "W015",
                'loop condition "%s" is always true and the loop body '
                "contains no break: it can only stop at the eval limit"
                % loop.cond_text,
                loop.cond_line, loop.cond_col, WARNING)


def _loop_can_stop(ctx, loop, reachable):
    """Conservatively: can this constant-true loop terminate?"""
    for __, block in loop.breaks:
        if block in reachable:
            return True
    for block in loop.body_blocks:
        if block not in reachable:
            continue
        for stmt in block.stmts:
            if stmt.synthetic is not None:
                continue
            if stmt.name in ("return", "error"):
                return True
            eff = ctx.effects_of(stmt)
            if eff.havoc or eff.reads_all or eff.cmdsub:
                # eval/unknown/proc commands may break, return, or
                # raise; give the loop the benefit of the doubt.
                return True
    return False


# -- W016 ---------------------------------------------------------------


def _destroyed_gen(stmt):
    if stmt.name == "destroyWidget" and stmt.words is not None:
        return [name for name in (_literal(word)
                                  for word in stmt.words[1:])
                if name is not None]
    return ()


def _creation_kill(ctx, stmt):
    if stmt.words is None or stmt.name is None:
        return ()
    if ctx.kb is not None \
            and ctx.kb.creation_class(stmt.name) is not None \
            and len(stmt.words) >= 2:
        target = _literal(stmt.words[1])
        if target is not None:
            return (target,)
    return ()


def _check_destroyed_widgets(ctx, graph, reachable):
    """W016: a widget argument that may already be destroyed."""
    if ctx.kb is None:
        return
    problem = dataflow.SetUnion(
        gen=_destroyed_gen,
        kill=lambda stmt: _creation_kill(ctx, stmt))
    states = dataflow.solve(graph, problem)
    for block in graph.blocks:
        if block not in reachable or block.in_catch:
            continue
        for stmt, state in dataflow.stmt_states(problem, block,
                                                states[block]):
            if not state or stmt.name is None or stmt.words is None:
                continue
            for position in ctx.kb.widget_arg_positions(stmt.name):
                if position >= len(stmt.words):
                    continue
                handle = _literal(stmt.words[position])
                if handle is not None and handle in state:
                    ctx.report(
                        "W016",
                        'widget "%s" may already be destroyed when '
                        "used here (destroyWidget on a preceding path)"
                        % handle,
                        stmt.line, stmt.col, WARNING)
