"""wafelint -- static analysis for Wafe/Tcl frontend scripts.

The paper leaves percent-code validity and command usage to "the
programmer's responsibility": mistakes in application scripts only
surface at runtime, inside a child process talking over a pipe.  But
the repo carries machine-readable ground truth for almost everything a
script can get wrong -- the codegen specs behind every generated
command, the widget classes' resource tables, the percent-code/event
matrix -- so this package checks scripts *before* they run:

* :func:`check` -- programmatic API: source text in, a list of
  :class:`~repro.lint.diagnostics.Diagnostic` out.  Never executes any
  script code; a script consisting of ``exit``/``exec``/infinite loops
  is analyzed in milliseconds.
* ``python -m repro.lint file...`` -- the CLI (see
  :mod:`repro.lint.cli`), with ``--format text|json`` and a non-zero
  exit status when error-severity diagnostics are found.
* ``wafe --f script --lint`` -- file mode analyzes before running and
  routes diagnostics through the frontend's error channel.

Every rule is documented with examples in ``docs/LINT.md``.
"""

from repro.lint.diagnostics import Diagnostic, ERROR, RULES, WARNING

# The analyzer and knowledge base import the full widget/spec tables;
# they are resolved lazily (PEP 562) so light consumers -- notably the
# bytecode optimizer, which shares :mod:`repro.lint.cfg` and
# :mod:`repro.lint.dataflow` -- can import this package without paying
# for them.
_LAZY = {
    "Analyzer": ("repro.lint.analyzer", "Analyzer"),
    "Knowledge": ("repro.lint.knowledge", "Knowledge"),
    "knowledge_for": ("repro.lint.knowledge", "knowledge_for"),
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name))
    import importlib

    return getattr(importlib.import_module(target[0]), target[1])


def check(source, filename="<script>", build="athena", extra_commands=(),
          safe_profile=False):
    """Statically analyze a Wafe/Tcl script; returns diagnostics.

    ``build`` selects which command surface the script is checked
    against (``athena``, ``motif``, or ``both``); ``extra_commands``
    names application-registered commands (``wafe.register_command``)
    the script may legitimately call.  ``safe_profile`` additionally
    flags commands the runtime hides under ``--safe`` (rule W011).
    Lexical rules (W001..W011) and flow-sensitive rules (W012..W017)
    both run.
    """
    from repro.lint.analyzer import Analyzer
    from repro.lint.knowledge import knowledge_for

    analyzer = Analyzer(knowledge_for(build), filename=filename,
                        extra_commands=extra_commands,
                        safe_profile=safe_profile)
    analyzer.collect(source)
    analyzer.analyze(source)
    return analyzer.diagnostics()


__all__ = [
    "Analyzer",
    "Diagnostic",
    "ERROR",
    "Knowledge",
    "RULES",
    "WARNING",
    "check",
    "knowledge_for",
]
