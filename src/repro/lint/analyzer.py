"""The wafelint analysis pass: recursive descent over parsed scripts.

The analyzer walks a script the way the interpreter would -- commands,
nested braced/quoted script arguments, callback strings, translation
tables -- but never evaluates anything: loops are visited once,
``exec``/``exit``/``quit`` are just names, and command/variable
substitutions are left symbolic.  Two passes run over the same tree:

* ``collect`` gathers facts usable before their definition point --
  ``proc`` names/arities and widget creations (name -> class) -- so a
  callback attached early may call a proc defined later.
* ``analyze`` applies the rules (W001..W010, see
  :mod:`repro.lint.diagnostics`) and records diagnostics with absolute
  file positions.

Positions: every region of nested script is analyzed as a slice of the
original source anchored at a (line, col) base; positions inside the
region compose with the base, so a bad percent code four callbacks deep
still points at the right character of the file.
"""

from repro.lint.diagnostics import Diagnostic, ERROR, WARNING
from repro.lint.knowledge import ALL_CALLBACK_CODES
from repro.tcl import parser as _parser
from repro.tcl.errors import TclError
from repro.tcl.lists import string_to_list
from repro.xlib import xtypes
from repro.xt.translations import TranslationError, parse_translation_table

#: Commands that unconditionally end a block (for W010).
_TERMINATORS = frozenset(("return", "break", "continue", "error"))

#: Commands taking nested script arguments (guards the region math,
#: which costs a line count per word, off the common path).
_SCRIPT_ARG_COMMANDS = frozenset((
    "if", "while", "for", "foreach", "catch", "time", "switch",
    "addWorkProc", "addTimeOut", "ownSelection",
    "setCommunicationVariable"))

#: Nesting bound: analysis of adversarial input must terminate.
_MAX_DEPTH = 50


def _compose(base_line, base_col, rel_line, rel_col):
    """Absolute position of a (line, col) relative to a region base."""
    if rel_line == 1:
        return base_line, base_col + rel_col - 1
    return base_line + rel_line - 1, rel_col


def _offset_of(text, line, col):
    """Inverse of :func:`repro.tcl.parser.line_col` (clamped)."""
    pos = 0
    for __ in range(line - 1):
        newline = text.find("\n", pos)
        if newline < 0:
            return len(text)
        pos = newline + 1
    return min(pos + col - 1, len(text))


class _Region:
    """A piece of script text anchored at an absolute file position."""

    __slots__ = ("text", "line", "col")

    def __init__(self, text, line=1, col=1):
        self.text = text
        self.line = line
        self.col = col

    def position(self, offset):
        """Absolute (line, col) of a character offset in this region."""
        rel_line, rel_col = _parser.line_col(self.text, offset)
        return _compose(self.line, self.col, rel_line, rel_col)

    def subregion(self, start, stop):
        line, col = self.position(start)
        return _Region(self.text[start:stop], line, col)


class _ProcInfo:
    __slots__ = ("name", "min_args", "max_args")

    def __init__(self, name, min_args, max_args):
        self.name = name
        self.min_args = min_args
        self.max_args = max_args  # None: trailing ``args`` formal


class Analyzer:
    """One lint run: shared proc/widget tables, accumulated diagnostics.

    ``collect`` and ``analyze`` may each be called several times (e.g.
    for every script chunk extracted from one Python example file); all
    chunks then share procs, widget classes, and extra commands.
    """

    def __init__(self, knowledge, filename="<script>", extra_commands=(),
                 safe_profile=False):
        self.kb = knowledge
        self.filename = filename
        self.extra_commands = set(extra_commands)
        #: W011: flag commands the runtime hides under --safe.
        self.safe_profile = safe_profile
        self.procs = {}
        #: widget name -> class name, seeded with the automatic shell.
        self.widgets = {"topLevel": "ApplicationShell"}
        self._diags = []
        #: Top-level chunks seen by collect(), in source order, and the
        #: callback scripts found during analysis -- the flow-sensitive
        #: pass (W012..W017) runs over both.
        self._chunks = []
        self._callback_scripts = []
        self._flow_done = False

    def diagnostics(self):
        """All findings, deduplicated, sorted by (file, line, col,
        rule) so output is diffable across runs.  Runs the
        flow-sensitive pass first if it has not run yet."""
        self.flow()
        seen = set()
        unique = []
        for diag in sorted(self._diags,
                           key=lambda d: (d.file, d.line, d.col, d.code,
                                          d.severity, d.message)):
            key = (diag.file, diag.line, diag.col, diag.code,
                   diag.severity, diag.message)
            if key not in seen:
                seen.add(key)
                unique.append(diag)
        return unique

    # ------------------------------------------------------------------
    # Entry points

    def collect(self, source, line=1, col=1, embedded=False):
        """``embedded`` marks a chunk harvested out of a host program
        (a Python string literal): the host runs it interleaved with
        arbitrary interpreter mutations, so the flow pass must assume
        any variable may already be defined at its entry."""
        self._chunks.append((source, line, col, embedded))
        self._collect_region(_Region(source, line, col), 0)

    def analyze(self, source, line=1, col=1):
        self._analyze_region(_Region(source, line, col), 0)

    def flow(self):
        """The flow-sensitive pass (W012..W017), once per analyzer.

        Imported lazily: the CFG/dataflow machinery is only paid for
        when diagnostics are actually requested."""
        if self._flow_done:
            return
        self._flow_done = True
        from repro.lint.flowrules import analyze_flow

        self._diags.extend(analyze_flow(
            self._chunks, self._callback_scripts, self.kb,
            self.filename, extra_commands=self.extra_commands))

    # ------------------------------------------------------------------
    # Shared plumbing

    def _report(self, code, message, region, offset, severity=ERROR):
        line, col = region.position(offset)
        self._diags.append(Diagnostic(code, message, file=self.filename,
                                      line=line, col=col,
                                      severity=severity))

    def _iter_commands(self, region, report):
        """Parse a region one command at a time, recovering at the line
        after a parse error so one bad command does not hide the rest
        of the script.  Parse errors carry positions relative to the
        region's text, which compose with the region base (W006)."""
        text = region.text
        pos = 0
        n = len(text)
        while pos < n:
            try:
                command, pos = _parser._parse_command(text, pos)
            except TclError as err:
                if report:
                    self._report_parse_error(region, err)
                resume = pos
                if err.line is not None:
                    resume = max(resume,
                                 _offset_of(text, err.line, err.col))
                newline = text.find("\n", resume)
                if newline < 0:
                    return
                pos = newline + 1
                continue
            if command is not None and command.words:
                yield command

    def _report_parse_error(self, region, err):
        message = err.result
        if err.line is not None:
            # Re-anchor the parser's relative position.
            suffix = " (line %d column %d)" % (err.line, err.col)
            if message.endswith(suffix):
                message = message[: -len(suffix)]
            line, col = _compose(region.line, region.col,
                                 err.line, err.col)
        else:
            line, col = region.line, region.col
        self._diags.append(Diagnostic(
            "W006", message, file=self.filename,
            line=line, col=col, severity=ERROR))

    @staticmethod
    def _literal(word):
        return word.literal_value() if word.is_literal() else None

    def _word_region(self, region, word, next_pos):
        """The raw source region a word's content occupies.

        For braced and quoted words the delimiters are stripped; for
        bare words the word runs to ``next_pos`` (the scan position
        after the word).  Returns None for words whose raw extent
        cannot be recovered.
        """
        text = region.text
        pos = word.pos
        if pos >= len(text):
            return None
        ch = text[pos]
        if ch == "{":
            end = _parser._skip_braces(text, pos)
            return region.subregion(pos + 1, end - 1)
        if ch == '"':
            end = _parser._skip_quotes(text, pos)
            return region.subregion(pos + 1, end - 1)
        return region.subregion(pos, next_pos)

    def _command_word_regions(self, region, parsed):
        """Raw regions for every word of a parsed command (or None when
        a word's extent is ambiguous -- conservative fallback)."""
        regions = []
        words = parsed.words
        for i, word in enumerate(words):
            if i + 1 < len(words):
                next_pos = words[i + 1].pos
            else:
                next_pos = self._word_end(region.text, word)
            regions.append(self._word_region(region, word, next_pos))
        return regions

    @staticmethod
    def _word_end(text, word):
        """End offset of the last word of a command (bare words only
        need scanning to the next separator)."""
        i = word.pos
        n = len(text)
        if i < n and text[i] in "{\"":
            return n  # unused: braced/quoted handled by _word_region
        while i < n and text[i] not in " \t\n;":
            if text[i] == "\\" and i + 1 < n:
                i += 2
            else:
                i += 1
        return i

    # ------------------------------------------------------------------
    # Pass 1: fact collection (procs, widget creations)

    def _collect_region(self, region, depth):
        if depth > _MAX_DEPTH:
            return
        for command in self._iter_commands(region, report=False):
            words = command.words
            name = self._literal(words[0]) if words else None
            if name is None:
                continue
            if name == "proc" and len(words) == 4:
                self._collect_proc(region, words, depth)
            elif name in ("applicationShell",) and len(words) >= 3:
                widget = self._literal(words[1])
                if widget is not None:
                    self.widgets.setdefault(widget, "ApplicationShell")
            else:
                class_name = self.kb.creation_class(name)
                if class_name is not None and len(words) >= 3:
                    widget = self._literal(words[1])
                    if widget is not None:
                        self.widgets.setdefault(widget, class_name)
            for sub in self._script_argument_regions(region, command):
                self._collect_region(sub, depth + 1)

    def _collect_proc(self, region, words, depth):
        name = self._literal(words[1])
        formals_text = self._literal(words[2])
        if name is None or formals_text is None:
            return
        try:
            formals = string_to_list(formals_text)
        except TclError:
            return
        min_args = 0
        max_args = len(formals)
        for formal in formals:
            if formal == "args" and formal == formals[-1]:
                max_args = None
                continue
            try:
                pieces = string_to_list(formal)
            except TclError:
                pieces = [formal]
            if len(pieces) < 2:
                min_args += 1
        self.procs[name] = _ProcInfo(name, min_args, max_args)
        body = self._word_region(region, words[3],
                                 self._word_end(region.text, words[3]))
        if body is not None:
            self._collect_region(body, depth + 1)

    def _script_argument_regions(self, region, command):
        """Regions of nested script arguments reachable without
        evaluating anything (control-flow bodies, timer/workproc
        scripts).  Callback strings are handled separately during
        analysis because they need class/resource context."""
        words = command.words
        name = self._literal(words[0]) if words else None
        if name is None or name not in _SCRIPT_ARG_COMMANDS:
            return
        regions = self._command_word_regions(region, command)

        def script_at(index):
            if index < len(words) and regions[index] is not None:
                return regions[index]
            return None

        if name == "if":
            # if cond body ?elseif cond body ...? ?else body?
            i = 2
            while i < len(words):
                keyword = self._literal(words[i])
                if keyword == "elseif":
                    i += 2  # skip to the body after the condition
                elif keyword == "else":
                    i += 1
                sub = script_at(i)
                if sub is not None:
                    yield sub
                i += 1
        elif name == "while":
            sub = script_at(2)
            if sub is not None:
                yield sub
        elif name == "for":
            for index in (1, 3, 4):
                sub = script_at(index)
                if sub is not None:
                    yield sub
        elif name == "foreach":
            sub = script_at(3)
            if sub is not None:
                yield sub
        elif name in ("catch", "time"):
            sub = script_at(1)
            if sub is not None:
                yield sub
        elif name == "addWorkProc":
            sub = script_at(1)
            if sub is not None:
                yield sub
        elif name == "addTimeOut":
            sub = script_at(2)
            if sub is not None:
                yield sub
        elif name == "ownSelection":
            sub = script_at(3)
            if sub is not None:
                yield sub
        elif name == "setCommunicationVariable":
            sub = script_at(3)
            if sub is not None:
                yield sub
        elif name == "switch":
            yield from self._switch_bodies(region, command, regions)

    def _switch_bodies(self, region, command, regions):
        """Bodies of ``switch ?opts? string {pat body ...}`` (braced
        list form) or inline ``switch string pat body pat body ...``."""
        words = command.words
        i = 1
        while i < len(words):
            literal = self._literal(words[i])
            if literal is None or not literal.startswith("-"):
                break
            i += 1
        i += 1  # the string being matched
        rest = words[i:]
        if len(rest) == 1 and rest[0].braced:
            # Braced pattern/body list: no per-body positions; anchor
            # everything at the list's opening brace.
            sub = regions[i]
            if sub is None:
                return
            try:
                items = string_to_list(sub.text)
            except TclError:
                return
            for j in range(1, len(items), 2):
                if items[j] != "-":
                    yield _Region(items[j], sub.line, sub.col)
            return
        for j in range(i + 1, len(words), 2):
            if j < len(regions) and regions[j] is not None:
                if self._literal(words[j]) != "-":
                    yield regions[j]

    # ------------------------------------------------------------------
    # Pass 2: rules

    def _analyze_region(self, region, depth):
        if depth > _MAX_DEPTH:
            return
        terminated_at = None
        for command in self._iter_commands(region, report=True):
            words = command.words
            if not words:
                continue
            if terminated_at is not None:
                self._report(
                    "W010",
                    'unreachable: follows "%s" in the same block'
                    % terminated_at, region, command.pos,
                    severity=WARNING)
                terminated_at = None  # one report per block is enough
            name = self._literal(words[0])
            self._analyze_command(region, command, name, depth)
            if name in _TERMINATORS:
                terminated_at = name

    def _analyze_command(self, region, command, name, depth):
        words = command.words
        if name is not None and "%" not in name:
            self._check_command_name(region, command, name)
        # Recurse into plain nested script arguments.
        for sub in self._script_argument_regions(region, command):
            self._analyze_region(sub, depth + 1)
        if name is None:
            return
        handler = _HANDLERS.get(name)
        if handler is not None:
            handler(self, region, command, depth)
            return
        class_name = self.kb.creation_class(name)
        if class_name is not None:
            self._analyze_creation(region, command, class_name, depth)

    # -- W001 / W002 ----------------------------------------------------

    def _check_command_name(self, region, command, name):
        words = command.words
        if name in self.procs:
            # Arity of user-proc calls is W017's job (the flow pass
            # tracks every definition, not just the last one).
            return
        if name in self.extra_commands:
            return
        if self.safe_profile and name in self.kb.safe_hidden:
            self._report(
                "W011",
                'command "%s" is hidden in safe mode (%s)'
                % (name, self.kb.safe_hidden[name]),
                region, command.pos)
            return
        if not self.kb.command_known(name):
            self._report("W001", 'unknown command "%s"' % name,
                         region, command.pos)
            return
        arity, usage = self.kb.spec_arity(name)
        if arity is not None and len(words) != arity:
            self._report(
                "W002",
                'wrong # args for "%s": got %d, should be "%s"'
                % (name, len(words) - 1, usage), region, command.pos)

    # -- W003 and callback recursion ------------------------------------

    def _analyze_creation(self, region, command, class_name, depth):
        words = command.words
        if len(words) < 3:
            self._report(
                "W002",
                'wrong # args: should be "%s name parent '
                '?attr value ...?"' % self._literal(words[0]),
                region, command.pos)
            return
        rest_index = 3
        rest = words[3:]
        if rest and self._literal(rest[0]) in ("-unmanaged", "unmanaged"):
            rest_index += 1
            rest = rest[1:]
        if len(rest) % 2 != 0:
            self._report(
                "W002",
                "attribute list must have an even number of elements",
                region, command.pos)
            rest = rest[:-1]
        parent_name = self._literal(words[2])
        parent_class = self.widgets.get(parent_name or "")
        self._check_attr_pairs(region, command, class_name, parent_class,
                               rest_index, depth)

    def _check_attr_pairs(self, region, command, class_name, parent_class,
                          first_attr, depth):
        """Attr/value pairs of a creation command or setValues: W003 on
        unknown resources, recursion into callback scripts."""
        words = command.words
        regions = self._command_word_regions(region, command)
        resources = self.kb.resource_map(class_name)
        constraints = self.kb.constraint_names(parent_class)
        for i in range(first_attr, len(words) - 1, 2):
            attr = self._literal(words[i])
            if attr is None:
                continue
            if resources is not None and attr not in resources \
                    and attr not in constraints:
                self._report(
                    "W003",
                    'unknown resource "%s" for widget class %s'
                    % (attr, class_name), region, words[i].pos)
                continue
            if self.kb.is_callback_resource(class_name, attr):
                value_region = regions[i + 1]
                if value_region is not None:
                    self._analyze_callback(value_region, class_name, attr,
                                           depth)

    def _widget_class_of(self, words, index):
        name = self._literal(words[index]) if index < len(words) else None
        return self.widgets.get(name or "")

    # -- Percent codes (W004 / W005) ------------------------------------

    def _scan_percent_codes(self, text):
        """Yield (code, offset) for every ``%x`` in ``text``; ``%%``
        yields the code ``%`` (always valid) and is not re-scanned."""
        i = 0
        n = len(text)
        while i + 1 < n:
            if text[i] == "%":
                yield text[i + 1], i
                i += 2
            else:
                i += 1

    def _analyze_callback(self, region, class_name, resource_name, depth):
        """A callback script: percent codes first, then the script
        rules apply to the expanded command."""
        class_codes = self.kb.callback_codes_for(class_name, resource_name)
        for code, offset in self._scan_percent_codes(region.text):
            if code == "%" or code == "w":
                continue
            if class_codes is not None and code in class_codes:
                continue
            if class_codes is None and code in ALL_CALLBACK_CODES:
                continue  # class unknown: give known codes the benefit
            if code in self.kb.action_code_events:
                self._report(
                    "W005",
                    '"%%%s" is an action percent code; callbacks on %s '
                    "accept %s" % (code, class_name or "this widget",
                                   _callback_code_list(class_codes)),
                    region, offset)
            elif code.isalnum():
                self._report(
                    "W004",
                    'unknown percent code "%%%s" in callback '
                    "(substitutes literally at runtime)" % code,
                    region, offset, severity=WARNING)
        self._callback_scripts.append((region.text, region.line,
                                       region.col))
        self._analyze_region(region, depth + 1)

    def _analyze_action_script(self, region, offset, script, event_types):
        """The argument of an ``exec(...)`` action in a translation:
        percent codes checked against the paper's code/event matrix."""
        for code, rel in self._scan_percent_codes(script):
            if code == "%":
                continue
            valid_for = self.kb.action_code_events.get(code)
            if valid_for is None:
                if code in ALL_CALLBACK_CODES:
                    self._report(
                        "W005",
                        '"%%%s" is a callback percent code and is not '
                        "substituted in action position" % code,
                        region, offset)
                elif code.isalnum():
                    self._report(
                        "W004",
                        'unknown percent code "%%%s" in action '
                        "(substitutes literally at runtime)" % code,
                        region, offset, severity=WARNING)
                continue
            invalid = [t for t in event_types if t not in valid_for]
            if invalid and code != "t":
                names = ", ".join(sorted(
                    xtypes.EVENT_NAMES.get(t, str(t)) for t in invalid))
                self._report(
                    "W004",
                    '"%%%s" is not valid for event type %s (substitutes '
                    "the empty string)" % (code, names), region, offset)

    # -- Translations (W007) --------------------------------------------

    def _analyze_translations(self, region, command, table_words,
                              widget_class, depth):
        words = command.words
        regions = self._command_word_regions(region, command)
        known_actions = self.kb.action_names(widget_class)
        for index in table_words:
            table_region = regions[index]
            text = self._literal(words[index])
            if table_region is None or text is None:
                continue
            try:
                table = parse_translation_table(text)
            except TranslationError as err:
                self._report("W007", str(err), region, words[index].pos)
                continue
            for production in table.productions:
                event_types = {spec.event_type for spec in production.specs}
                for action_name, args in production.actions:
                    if action_name == "exec":
                        for arg in args:
                            self._analyze_action_script(
                                table_region, 0, arg, event_types)
                            sub = _Region(arg, table_region.line,
                                          table_region.col)
                            self._analyze_region(sub, depth + 1)
                    elif known_actions is not None \
                            and action_name not in known_actions:
                        self._report(
                            "W007",
                            'unknown action "%s" for widget class %s'
                            % (action_name, widget_class), region,
                            words[index].pos, severity=WARNING)

    # -- Exprs (W009) ---------------------------------------------------

    def _check_expr_word(self, region, word):
        if word.braced:
            return
        has_varsub = any(kind == _parser.VARSUB for kind, __ in word.parts)
        if has_varsub:
            self._report(
                "W009",
                "unbraced expression with $-substitution (substituted "
                "before parsing; brace it)", region, word.pos,
                severity=WARNING)

    # ------------------------------------------------------------------
    # Per-command handlers

    def _handle_proc(self, region, command, depth):
        words = command.words
        if len(words) != 4:
            self._report(
                "W002",
                'wrong # args: should be "proc name args body"',
                region, command.pos)
            return
        body = self._word_region(region, words[3],
                                 self._word_end(region.text, words[3]))
        if body is not None:
            self._analyze_region(body, depth + 1)

    def _handle_set(self, region, command, depth):
        words = command.words
        if len(words) > 3:
            self._report(
                "W008",
                '"set" with %d arguments (takes one or two; missing '
                "quoting?)" % (len(words) - 1), region, command.pos,
                severity=WARNING)

    def _handle_expr(self, region, command, depth):
        for word in command.words[1:]:
            self._check_expr_word(region, word)

    def _handle_if(self, region, command, depth):
        words = command.words
        if len(words) > 1:
            self._check_expr_word(region, words[1])
        i = 2
        while i < len(words):
            keyword = self._literal(words[i])
            if keyword == "elseif" and i + 1 < len(words):
                self._check_expr_word(region, words[i + 1])
                i += 2
            else:
                i += 1

    def _handle_while(self, region, command, depth):
        if len(command.words) > 1:
            self._check_expr_word(region, command.words[1])

    def _handle_for(self, region, command, depth):
        if len(command.words) > 2:
            self._check_expr_word(region, command.words[2])

    def _handle_set_values(self, region, command, depth):
        words = command.words
        if len(words) < 2 or len(words) % 2 != 0:
            self._report(
                "W002",
                'wrong # args: should be "setValues widget '
                '?attr value ...?"', region, command.pos)
            return
        class_name = self._widget_class_of(words, 1)
        if class_name is None:
            return
        self._check_attr_pairs(region, command, class_name, None, 2, depth)

    def _handle_get_value(self, region, command, depth):
        words = command.words
        if len(words) != 3:
            self._report(
                "W002",
                'wrong # args: should be "getValue widget resource"',
                region, command.pos)
            return
        self._check_resource_name(region, command, words[2])

    def _handle_get_values(self, region, command, depth):
        words = command.words
        if len(words) < 4 or len(words) % 2 != 0:
            self._report(
                "W002",
                'wrong # args: should be "getValues widget resource '
                'varName ?resource varName ...?"', region, command.pos)
            return
        for i in range(2, len(words), 2):
            self._check_resource_name(region, command, words[i])

    def _check_resource_name(self, region, command, resource_word):
        words = command.words
        class_name = self._widget_class_of(words, 1)
        resource = self._literal(resource_word)
        if class_name is None or resource is None:
            return
        resources = self.kb.resource_map(class_name)
        if resources is None:
            return
        if resource not in resources \
                and resource not in self.kb.all_constraint_names:
            self._report(
                "W003",
                'unknown resource "%s" for widget class %s'
                % (resource, class_name), region, resource_word.pos)

    def _handle_add_callback(self, region, command, depth):
        words = command.words
        if len(words) != 4:
            self._report(
                "W002",
                'wrong # args: should be "addCallback widget resource '
                'script"', region, command.pos)
            return
        class_name = self._widget_class_of(words, 1)
        resource = self._literal(words[2])
        if class_name is not None and resource is not None:
            resources = self.kb.resource_map(class_name)
            if resources is not None and resource not in resources:
                self._report(
                    "W003",
                    'unknown resource "%s" for widget class %s'
                    % (resource, class_name), region, words[2].pos)
                return
        regions = self._command_word_regions(region, command)
        if regions[3] is not None:
            self._analyze_callback(regions[3], class_name, resource or
                                   "callback", depth)

    def _handle_predefined_callback(self, region, command, depth):
        words = command.words
        if len(words) < 4:
            self._report(
                "W002",
                'wrong # args: should be "callback widget resource '
                'function ?arg ...?"', region, command.pos)
            return
        func = self._literal(words[3])
        if func is not None and func not in self.kb.predefined_callbacks:
            self._report(
                "W001",
                'unknown predefined callback "%s": must be one of %s'
                % (func, ", ".join(sorted(self.kb.predefined_callbacks))),
                region, words[3].pos)

    def _handle_action(self, region, command, depth):
        words = command.words
        if len(words) < 4:
            self._report(
                "W002",
                'wrong # args: should be "action widget mode translation '
                '?translation ...?"', region, command.pos)
            return
        mode = self._literal(words[2])
        if mode is not None and mode not in ("override", "augment",
                                             "replace"):
            self._report(
                "W007",
                'bad mode "%s": must be override, augment, or replace'
                % mode, region, words[2].pos)
        widget_class = self._widget_class_of(words, 1)
        self._analyze_translations(region, command, range(3, len(words)),
                                   widget_class, depth)

    def _handle_override_translations(self, region, command, depth):
        words = command.words
        if len(words) != 3:
            return  # arity reported via the spec table
        widget_class = self._widget_class_of(words, 1)
        self._analyze_translations(region, command, (2,), widget_class,
                                   depth)


def _callback_code_list(class_codes):
    codes = ["%w", "%%"]
    codes.extend(sorted("%" + c for c in (class_codes or ())))
    return ", ".join(codes)


_HANDLERS = {
    "proc": Analyzer._handle_proc,
    "set": Analyzer._handle_set,
    "expr": Analyzer._handle_expr,
    "if": Analyzer._handle_if,
    "while": Analyzer._handle_while,
    "for": Analyzer._handle_for,
    "setValues": Analyzer._handle_set_values,
    "sV": Analyzer._handle_set_values,
    "getValue": Analyzer._handle_get_value,
    "gV": Analyzer._handle_get_value,
    "getValues": Analyzer._handle_get_values,
    "addCallback": Analyzer._handle_add_callback,
    "callback": Analyzer._handle_predefined_callback,
    "action": Analyzer._handle_action,
    "overrideTranslations": Analyzer._handle_override_translations,
    "augmentTranslations": Analyzer._handle_override_translations,
}
