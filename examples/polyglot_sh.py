#!/usr/bin/env python
"""A Bourne-shell backend: the "arbitrary programming languages" claim.

The paper's whole point is that the application program can be written
in anything that can do unbuffered stdio -- Perl, GAWK, Prolog, Tcl, C,
Ada in the distribution.  Here the backend is a plain ``/bin/sh``
script: it builds a counter GUI over the pipe and increments the label
each time the button's callback echoes ``tick`` back to it.
"""

import sys
import tempfile
import textwrap

from repro.core import make_wafe
from repro.core.frontend import Frontend
from repro.xlib import close_all_displays

SH_BACKEND = """\
#!/bin/sh
echo '%form f topLevel'
echo '%label count f label 0 width 80'
echo '%command tick f fromHoriz count label {tick} callback {echo tick}'
echo '%realize'
n=0
while read line; do
  case "$line" in
    tick)
      n=`expr $n + 1`
      echo "%sV count label $n"
      ;;
    stop)
      exit 0
      ;;
  esac
done
"""


def main():
    close_all_displays()
    wafe = make_wafe()
    with tempfile.NamedTemporaryFile("w", suffix=".sh", delete=False) as f:
        f.write(textwrap.dedent(SH_BACKEND))
        script = f.name
    front = Frontend(wafe, ["/bin/sh", script])

    wafe.main_loop(until=lambda: "tick" in wafe.widgets and
                   wafe.widgets["tick"].window is not None, max_idle=400)
    print("shell backend built the GUI; clicking 4 times...")
    button = wafe.lookup_widget("tick")
    display = wafe.app.default_display
    for i in range(1, 5):
        x, y = button.window.absolute_origin()
        display.click(x + 2, y + 2)
        wafe.app.process_pending()
        wafe.main_loop(
            until=lambda i=i: wafe.run_script("gV count label") == str(i),
            max_idle=400)
        print("  count label now: %s" % wafe.run_script("gV count label"))

    assert wafe.run_script("gV count label") == "4"
    front.send("stop\n")
    front.wait(timeout=5)
    front.close()
    print("the same Wafe binary served a /bin/sh application program")
    return 0


if __name__ == "__main__":
    sys.exit(main())
