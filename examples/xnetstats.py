#!/usr/bin/env python
"""xnetstats: "network statistics, frontend for netstat -i <interval>".

The backend plays the role of ``netstat -i`` emitting one line of
interface counters per interval (simulated -- the sandbox has no
network); the frontend shows packets/sec on a StripChart and the
running totals on labels.  This is the paper's monitor-frontend
pattern: an existing ASCII tool gains a GUI without being modified
beyond printing ``%`` lines.
"""

import sys
import time


def fake_netstat_line(tick):
    """One sample of (ipkts, opkts), deterministic."""
    in_packets = 1000 + tick * 37 + (tick * tick) % 91
    out_packets = 800 + tick * 29 + (tick * 3) % 53
    return in_packets, out_packets


def backend(intervals=6):
    out = sys.stdout
    out.write(
        "%form f topLevel\n"
        "%label title f label {netstat -i 1} borderWidth 0\n"
        "%label inLbl f label {in: 0} width 120 fromVert title\n"
        "%label outLbl f label {out: 0} width 120 fromVert title"
        " fromHoriz inLbl\n"
        "%stripChart chart f update 0 width 200 height 60 fromVert inLbl\n"
        "%lineGraph rates f data {0 0} width 200 height 60 fromVert chart\n"
        "%realize\n"
    )
    out.flush()
    sys.stdin.readline()  # go
    previous = fake_netstat_line(0)
    rates = []
    for tick in range(1, intervals + 1):
        current = fake_netstat_line(tick)
        rate = current[0] - previous[0]
        rates.append(str(rate))
        out.write("%%sV inLbl label {in: %d}\n" % current[0])
        out.write("%%sV outLbl label {out: %d}\n" % current[1])
        out.write("%%plotterSetData rates {%s}\n" % " ".join(rates))
        out.write("%%set ticks %d\n" % tick)
        out.flush()
        previous = current
        time.sleep(0.02)


def frontend():
    from repro.core import make_wafe
    from repro.core.frontend import Frontend
    from repro.xlib import close_all_displays

    close_all_displays()
    wafe = make_wafe()
    front = Frontend(wafe, [sys.executable, "-u", __file__, "--backend"])
    wafe.main_loop(until=lambda: "rates" in wafe.widgets and
                   wafe.widgets["rates"].window is not None, max_idle=400)
    front.send("go\n")
    wafe.main_loop(until=lambda: wafe.interp.var_exists("ticks") and
                   wafe.run_script("set ticks") == "6", max_idle=1000)

    in_label = wafe.run_script("gV inLbl label")
    out_label = wafe.run_script("gV outLbl label")
    rates = wafe.widgets["rates"].values()
    print("after 6 intervals:")
    print("  %s | %s" % (in_label, out_label))
    print("  packet-rate series: %s" % rates)
    assert in_label.startswith("in: ") and int(in_label[4:]) > 1000
    assert len(rates) == 6 and all(r > 0 for r in rates)
    front.close()
    print("xnetstats frontend tracked a live counter stream")
    return 0


if __name__ == "__main__":
    if "--backend" in sys.argv:
        backend()
    else:
        sys.exit(frontend())
