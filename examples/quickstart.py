#!/usr/bin/env python
"""Quickstart: the paper's file-mode hello world, through the public API.

Equivalent Wafe script (Figure 4, right)::

    #!/usr/bin/X11/wafe --f
    command hello topLevel \\
        label "Wafe new World" \\
        callback "echo Goodbye; quit"
    realize

We build it, click the button with the synthetic pointer, and save a
screenshot of the realized widget as an XPM file.
"""

import sys

from repro.core import make_wafe
from repro.xlib import close_all_displays
from repro.xlib.graphics import window_pixels
from repro.xlib.xpm import write_xpm


def main():
    close_all_displays()
    wafe = make_wafe()

    # Echo output would normally go to stdout (or the backend pipe);
    # capture it so we can show the callback really ran.
    said = []
    wafe.interp.write_output = lambda text: said.append(text.rstrip("\n"))

    wafe.run_script(
        'command hello topLevel '
        'label "Wafe new World" '
        'callback "echo Goodbye; quit"'
    )
    wafe.run_script("realize")

    button = wafe.lookup_widget("hello")
    print("created %s widget %r with label %r"
          % (button.CLASS_NAME, button.name, button["label"]))
    print("shell window: %dx%d"
          % (wafe.top_level.window.width, wafe.top_level.window.height))

    screenshot = write_xpm(window_pixels(wafe.top_level.window),
                           name="quickstart")
    with open("quickstart.xpm", "w") as handle:
        handle.write(screenshot)
    print("saved screenshot to quickstart.xpm (%d bytes)"
          % len(screenshot))

    # A user clicks the button.
    x, y = button.window.absolute_origin()
    wafe.app.default_display.click(x + 4, y + 4)
    wafe.app.process_pending()

    print("callback output:", said)
    assert said == ["Goodbye"], said
    assert wafe.quit_requested
    print("quit requested -- hello world complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
