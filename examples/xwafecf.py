#!/usr/bin/env python
"""xwafecf: "a simple read-only card filer".

Cards live in a flat text file (name/phone/room records, the kind of
data the paper's Oracle frontends served).  A List shows the names; a
Dialog-like form shows the selected card; an AsciiText field filters
by substring -- the "field completion and other funky stuff" spirit of
xwafeora, in miniature and in pure file mode (no backend process).
"""

import sys

from repro.core import make_wafe
from repro.xlib import close_all_displays

CARDS = [
    {"name": "Gustaf Neumann", "phone": "4277-38451", "room": "D2.054"},
    {"name": "Stefan Nusser", "phone": "4277-38452", "room": "D2.056"},
    {"name": "John Ousterhout", "phone": "510-642", "room": "Soda 413"},
    {"name": "Kaleb Keithley", "phone": "617-555", "room": "MIT NE43"},
]


class CardFiler:
    def __init__(self, wafe, cards):
        self.wafe = wafe
        self.cards = cards
        self.visible = list(cards)
        wafe.register_command("showCard", self.cmd_show_card)
        wafe.register_command("filterCards", self.cmd_filter)
        wafe.run_script("form f topLevel")
        wafe.run_script("asciiText filter f editType edit width 200")
        wafe.run_script(
            "action filter override {<Key>Return: "
            "exec(filterCards [gV filter string])}")
        wafe.run_script("list names f fromVert filter list {%s}"
                        % " ".join("{%s}" % c["name"] for c in cards))
        # Brace the substitution: card names contain spaces.
        wafe.run_script('sV names callback "showCard {%s}"')
        wafe.run_script("label cardName f fromVert names width 220"
                        " borderWidth 0 label {}")
        wafe.run_script("label cardPhone f fromVert cardName width 220"
                        " borderWidth 0 label {}")
        wafe.run_script("label cardRoom f fromVert cardPhone width 220"
                        " borderWidth 0 label {}")
        wafe.run_script("realize")

    def cmd_show_card(self, wafe, argv):
        name = argv[1] if len(argv) > 1 else ""
        for card in self.cards:
            if card["name"] == name:
                wafe.run_script("sV cardName label {Name: %s}" % card["name"])
                wafe.run_script("sV cardPhone label {Phone: %s}"
                                % card["phone"])
                wafe.run_script("sV cardRoom label {Room: %s}" % card["room"])
                return ""
        return ""

    def cmd_filter(self, wafe, argv):
        needle = (argv[1] if len(argv) > 1 else "").lower()
        self.visible = [c for c in self.cards
                        if needle in c["name"].lower()]
        wafe.lookup_widget("names").change_list(
            [c["name"] for c in self.visible])
        return ""


def click_name(wafe, name):
    lst = wafe.lookup_widget("names")
    index = lst.items().index(name)
    x, y = lst.window.absolute_origin()
    wafe.app.default_display.click(
        x + 3, y + lst.resources["internalHeight"] +
        index * lst.row_height() + 1)
    wafe.app.process_pending()


def main():
    close_all_displays()
    wafe = make_wafe()
    filer = CardFiler(wafe, CARDS)

    click_name(wafe, "Stefan Nusser")
    print("selected card:")
    for field in ("cardName", "cardPhone", "cardRoom"):
        print("  " + wafe.run_script("gV %s label" % field))
    assert wafe.run_script("gV cardPhone label") == "Phone: 4277-38452"

    # Type a filter and press Return.
    text = wafe.lookup_widget("filter")
    wafe.app.default_display.type_string(text.window, "neu")
    wafe.app.default_display.type_string(text.window, "\r")
    wafe.app.process_pending()
    names = wafe.lookup_widget("names").items()
    print("filter 'neu' ->", names)
    assert names == ["Gustaf Neumann"]

    click_name(wafe, "Gustaf Neumann")
    assert wafe.run_script("gV cardRoom label") == "Room: D2.054"
    print("card filer works (read-only, file mode, no backend process)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
