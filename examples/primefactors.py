#!/usr/bin/env python
"""The paper's Perl demo, ported: prime factors through a Wafe frontend.

The paper's sample program builds this widget tree over the pipe::

    %form top topLevel
    %asciiText input top editType edit width 200
    %action input override {<Key>Return: exec(echo [gV input string])}
    %label result top label {} width 200 fromVert input
    %command quit top fromVert result callback quit
    %label info top fromVert result fromHoriz quit label {} borderWidth 0 width 150
    %realize

and then factors every number typed into the text widget, updating the
``result`` and ``info`` labels via ``%sV`` commands.

Run without arguments to see the whole thing: this script spawns
*itself* with ``--backend`` as the application program (frontend mode),
synthesizes the user typing numbers, and shows the labels updating.
"""

import sys
import time


def backend():
    """The application program: exactly the Perl program's structure."""
    out = sys.stdout
    # Phase 2: build and realize the widget tree.
    out.write(
        "%form top topLevel\n"
        "%asciiText input top editType edit width 200\n"
        "%action input override"
        " {<Key>Return: exec(echo [gV input string])}\n"
        "%label result top label {} width 200 fromVert input\n"
        "%command quit top fromVert result callback quit\n"
        "%label info top fromVert result fromHoriz quit label {}"
        " borderWidth 0 width 150\n"
        "%realize\n"
    )
    out.flush()
    # Phase 3: the read loop.
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        if line.isdigit():
            out.write("%sV info label thinking...\n")
            out.flush()
            start = time.time()
            n = int(line)
            factors = []
            d = 2
            while d <= n:
                while n % d == 0:
                    factors.insert(0, d)
                    n //= d
                d += 1
            out.write("%%sV result label {%s}\n"
                      % "*".join(str(f) for f in factors))
            out.write("%%sV info label {%d seconds}\n"
                      % int(time.time() - start))
        else:
            out.write("%sV info label {invalid input}\n")
        out.flush()


def frontend():
    from repro.core import make_wafe
    from repro.core.frontend import Frontend
    from repro.xlib import close_all_displays

    close_all_displays()
    wafe = make_wafe()
    front = Frontend(wafe, [sys.executable, "-u", __file__, "--backend"])

    def tree_ready():
        widget = wafe.widgets.get("info")
        return widget is not None and widget.window is not None

    wafe.main_loop(until=tree_ready, max_idle=400)
    print("widget tree built by the backend over the pipe:")
    for name in ("top", "input", "result", "quit", "info"):
        widget = wafe.lookup_widget(name)
        print("  %-7s %-9s at (%d,%d)" % (name, widget.CLASS_NAME,
                                          widget.resources["x"],
                                          widget.resources["y"]))

    display = wafe.app.default_display
    text = wafe.lookup_widget("input")

    for number in ("60", "97", "1001"):
        # Clear the input, type the number, press Return.
        wafe.run_script("sV input string {}")
        wafe.lookup_widget("input").set_insertion_point(0)
        display.type_string(text.window, number)
        display.type_string(text.window, "\r")
        wafe.app.process_pending()

        expected_done = [False]

        def factored():
            label = wafe.run_script("gV result label")
            expected_done[0] = bool(label)
            return expected_done[0]

        wafe.main_loop(until=factored, max_idle=400)
        result = wafe.run_script("gV result label")
        info = wafe.run_script("gV info label")
        print("typed %-5s -> result label %r (info: %r)"
              % (number, result, info))
        # Verify the factorization.
        product = 1
        for factor in result.split("*"):
            product *= int(factor)
        assert product == int(number), (result, number)
        wafe.run_script("sV result label {}")

    # Click the quit button, as a user would.
    quit_button = wafe.lookup_widget("quit")
    x, y = quit_button.window.absolute_origin()
    display.click(x + 2, y + 2)
    wafe.app.process_pending()
    assert wafe.quit_requested
    front.close()
    print("quit button pressed; frontend and backend shut down")
    return 0


if __name__ == "__main__":
    if "--backend" in sys.argv:
        backend()
    else:
        sys.exit(frontend())
