#!/usr/bin/env python
"""xwafemail: "Mail user frontend ... using elm aliases".

The mail logic (folder parsing, aliases, deletion) lives in the backend
process, exactly as the paper's architecture prescribes; the frontend
only renders.  The mailbox is a generated mbox-style folder; "elm
aliases" map short names to addresses when displaying the From line.

The backend builds a classic three-pane reader over the pipe: a List
of message summaries, an AsciiText with the selected body, and a
button row (delete / quit).
"""

import sys

ALIASES = {
    "gustaf": "Gustaf Neumann <neumann@wu-wien.ac.at>",
    "stefan": "Stefan Nusser <nusser@wu-wien.ac.at>",
    "jo": "John Ousterhout <ouster@cs.berkeley.edu>",
}

MAILBOX = [
    {"from": "gustaf", "subject": "Wafe 0.93 released",
     "body": "The new version is on ftp.wu-wien.ac.at.\nEnjoy, Gustaf"},
    {"from": "stefan", "subject": "master thesis draft",
     "body": "Please find the draft attached.\n-- Stefan"},
    {"from": "jo", "subject": "Re: Tcl and Tk",
     "body": "Nice frontend approach!\nJohn"},
]


def tcl_quote(text):
    """Quote arbitrary text for a *single-line* Wafe command.

    The protocol requires every command to fit on one line, so newlines
    must travel as Tcl ``\\n`` escapes inside a double-quoted word.
    """
    out = text
    for ch in ("\\", '"', "$", "[", "]"):
        out = out.replace(ch, "\\" + ch)
    return '"' + out.replace("\n", "\\n") + '"'


def backend():
    out = sys.stdout
    mailbox = list(MAILBOX)

    def summaries():
        return " ".join(
            "{%d: %s -- %s}" % (i + 1, ALIASES[m["from"]].split(" <")[0],
                                m["subject"])
            for i, m in enumerate(mailbox))

    out.write(
        "%form f topLevel\n"
        "%label status f label {3 messages} borderWidth 0 width 300"
        " justify left\n"
        "%list msgs f fromVert status list {" + summaries().replace(
            "{", "{").replace("}", "}") + "}\n"
        "%sV msgs callback {echo select %i}\n"
        "%asciiText body f fromVert msgs editType read width 300"
        " height 80 string {}\n"
        "%command del f fromVert body label {delete}"
        " callback {echo delete}\n"
        "%command quit f fromVert body fromHoriz del label {quit}"
        " callback {echo bye}\n"
        "%realize\n"
    )
    out.flush()
    selected = [None]
    for line in sys.stdin:
        words = line.split()
        if not words:
            continue
        if words[0] == "select" and len(words) > 1:
            index = int(words[1])
            selected[0] = index
            message = mailbox[index]
            body = "From: %s\nSubject: %s\n\n%s" % (
                ALIASES[message["from"]], message["subject"],
                message["body"])
            out.write("%%sV body string %s\n" % tcl_quote(body))
        elif words[0] == "delete" and selected[0] is not None:
            del mailbox[selected[0]]
            selected[0] = None
            out.write("%%listChange msgs {%s} true\n" % summaries())
            out.write("%%sV status label {%d messages}\n" % len(mailbox))
            out.write("%sV body string {}\n")
        elif words[0] == "bye":
            break
        out.flush()


def click_row(wafe, row):
    lst = wafe.lookup_widget("msgs")
    x, y = lst.window.absolute_origin()
    wafe.app.default_display.click(
        x + 3, y + lst.resources["internalHeight"] +
        row * lst.row_height() + 1)
    wafe.app.process_pending()


def click_button(wafe, name):
    widget = wafe.lookup_widget(name)
    x, y = widget.window.absolute_origin()
    wafe.app.default_display.click(x + 2, y + 2)
    wafe.app.process_pending()


def frontend():
    from repro.core import make_wafe
    from repro.core.frontend import Frontend
    from repro.xlib import close_all_displays

    close_all_displays()
    wafe = make_wafe()
    front = Frontend(wafe, [sys.executable, "-u", __file__, "--backend"])
    wafe.main_loop(until=lambda: "quit" in wafe.widgets and
                   wafe.widgets["quit"].window is not None, max_idle=400)

    print("mailbox:", wafe.lookup_widget("msgs").items())
    click_row(wafe, 1)  # read Stefan's mail
    wafe.main_loop(until=lambda: wafe.run_script("gV body string") != "",
                   max_idle=600)
    body = wafe.run_script("gV body string")
    print("opened message 2:")
    for line in body.split("\n")[:2]:
        print("  " + line)
    assert "nusser@wu-wien.ac.at" in body  # the alias expanded

    click_button(wafe, "del")  # delete it
    wafe.main_loop(until=lambda: wafe.run_script("gV status label") ==
                   "2 messages", max_idle=600)
    items = wafe.lookup_widget("msgs").items()
    print("after delete:", items)
    assert len(items) == 2
    assert not any("thesis" in item for item in items)

    click_button(wafe, "quit")
    wafe.main_loop(max_idle=100)
    front.close()
    print("xwafemail: aliases, reading and deletion all worked")
    return 0


if __name__ == "__main__":
    if "--backend" in sys.argv:
        backend()
    else:
        sys.exit(frontend())
