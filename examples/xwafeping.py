#!/usr/bin/env python
"""xwafeping: "pings several machines and shows up-status".

One of the demo applications the paper lists in the Wafe distribution.
The backend process "pings" a set of hosts (simulated here -- the
sandbox has no network) and updates a grid of Toggle-style labels plus
a round-trip-time bar graph over the pipe protocol, one sweep per
second; the frontend only knows the protocol.
"""

import sys
import time

HOSTS = [
    ("dec4.wu-wien.ac.at", True, 12),
    ("dec5.wu-wien.ac.at", True, 15),
    ("sparc1.wu-wien.ac.at", False, 0),
    ("rs6000.wu-wien.ac.at", True, 48),
    ("hp720.wu-wien.ac.at", True, 31),
]


def simulated_ping(host, sweep):
    """Deterministic stand-in for ICMP: (alive, rtt_ms)."""
    for name, alive, rtt in HOSTS:
        if name == host:
            if not alive:
                return False, 0
            jitter = (hash((host, sweep)) % 7) - 3
            return True, max(1, rtt + jitter)
    return False, 0


def backend(sweeps=3):
    out = sys.stdout
    out.write("%form f topLevel\n")
    previous = None
    for name, __, __ in HOSTS:
        row = name.split(".")[0]
        extra = (" fromVert status-%s" % previous) if previous else ""
        out.write("%%label host-%s f label {%s} borderWidth 0 width 170"
                  " justify left%s\n"
                  % (row, name, (" fromVert host-%s" % previous)
                     if previous else ""))
        out.write("%%label status-%s f label {...} width 60"
                  " fromHoriz host-%s%s\n" % (row, row, extra))
        previous = row
    out.write("%%barGraph rtt f data {%s} width 220 height 80"
              " fromVert host-%s title {rtt ms}\n"
              % (" ".join("0" for __ in HOSTS), previous))
    out.write("%realize\n")
    out.write("%echo frontend-ready\n")
    out.flush()
    sys.stdin.readline()  # wait for the frontend's go-ahead
    for sweep in range(sweeps):
        rtts = []
        for name, __, __ in HOSTS:
            row = name.split(".")[0]
            alive, rtt = simulated_ping(name, sweep)
            rtts.append(str(rtt))
            if alive:
                out.write("%%sV status-%s label {up %dms} background green\n"
                          % (row, rtt))
            else:
                out.write("%%sV status-%s label {down} background red\n"
                          % row)
        out.write("%%plotterSetData rtt {%s}\n" % " ".join(rtts))
        out.write("%%echo sweep-%d-done\n" % sweep)
        out.flush()
        if sweep < sweeps - 1:
            time.sleep(0.05)


def frontend():
    from repro.core import make_wafe
    from repro.core.frontend import Frontend
    from repro.xlib import close_all_displays
    from repro.xlib.colors import alloc_color

    close_all_displays()
    wafe = make_wafe()
    acks = []
    front = Frontend(wafe, [sys.executable, "-u", __file__, "--backend"])
    # echo goes to the backend; watch it arrive back via a passthrough
    # trick instead: the backend echoes markers we read from its stdin
    # -- but here the echo target *is* the backend, so track sweeps by
    # polling the bar graph instead.
    wafe.main_loop(until=lambda: "rtt" in wafe.widgets and
                   wafe.widgets["rtt"].window is not None, max_idle=400)
    front.send("go\n")

    def last_sweep_done():
        data = wafe.widgets["rtt"].values()
        return any(v > 0 for v in data)

    wafe.main_loop(until=last_sweep_done, max_idle=600)
    # Let the remaining sweeps arrive.
    deadline = time.time() + 2.0
    while time.time() < deadline and front.process.poll() is None:
        wafe.app.process_one(block=True)
    wafe.app.process_pending()

    print("host status after the ping sweeps:")
    up = down = 0
    for name, expected_alive, __ in HOSTS:
        row = name.split(".")[0]
        label = wafe.run_script("gV status-%s label" % row)
        background = wafe.lookup_widget("status-%s" % row)["background"]
        state = "up" if background == alloc_color("green") else "down"
        print("  %-22s %-10s (%s)" % (name, label, state))
        assert (state == "up") == expected_alive, name
        up += state == "up"
        down += state == "down"
    rtts = wafe.widgets["rtt"].values()
    print("rtt series: %s" % rtts)
    assert up == 4 and down == 1
    assert rtts[2] == 0.0  # the dead host
    front.close()
    print("xwafeping complete: %d up, %d down" % (up, down))
    return 0


if __name__ == "__main__":
    if "--backend" in sys.argv:
        backend()
    else:
        sys.exit(frontend())
