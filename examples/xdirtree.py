#!/usr/bin/env python
"""xdirtree: the tree directory browser from the demo list.

A List widget shows the entries of the current directory; selecting a
directory descends into it, selecting ``..`` goes up.  The selection
callback uses the paper's List percent codes (%s is the active
element).  The script builds a small tree in a temp directory and
walks it by synthesized clicks.
"""

import os
import sys
import tempfile

from repro.core import make_wafe
from repro.xlib import close_all_displays


def build_sample_tree(root):
    os.makedirs(os.path.join(root, "src", "repro"))
    os.makedirs(os.path.join(root, "docs"))
    for path in ("README", "src/setup.py", "src/repro/__init__.py",
                 "docs/paper.txt"):
        with open(os.path.join(root, path), "w") as handle:
            handle.write("content of %s\n" % path)


class DirTree:
    def __init__(self, wafe, root):
        self.wafe = wafe
        self.current = root
        wafe.register_command("chdirList", self.cmd_chdir)
        wafe.run_script("form f topLevel")
        wafe.run_script('label where f label {} width 260 borderWidth 0'
                        ' justify left')
        wafe.run_script('list dir f fromVert where list {}')
        wafe.run_script('sV dir callback "chdirList %s"')
        wafe.run_script("realize")
        self.show(root)

    def entries(self):
        names = sorted(os.listdir(self.current))
        out = [".."]
        for name in names:
            full = os.path.join(self.current, name)
            out.append(name + "/" if os.path.isdir(full) else name)
        return out

    def show(self, path):
        self.current = os.path.abspath(path)
        self.wafe.run_script("sV where label {%s}" % self.current)
        self.wafe.lookup_widget("dir").change_list(self.entries())
        self.wafe.app.process_pending()

    def cmd_chdir(self, wafe, argv):
        choice = argv[1] if len(argv) > 1 else ""
        if choice == "..":
            self.show(os.path.dirname(self.current))
        elif choice.endswith("/"):
            self.show(os.path.join(self.current, choice[:-1]))
        else:
            wafe.run_script("sV where label {file: %s}"
                            % os.path.join(self.current, choice))
        return ""


def click_entry(wafe, text):
    """Click the list row whose label is ``text``."""
    lst = wafe.lookup_widget("dir")
    index = lst.items().index(text)
    x, y = lst.window.absolute_origin()
    row_y = y + lst.resources["internalHeight"] + \
        index * lst.row_height() + 1
    wafe.app.default_display.click(x + 3, row_y)
    wafe.app.process_pending()


def main():
    close_all_displays()
    with tempfile.TemporaryDirectory() as root:
        build_sample_tree(root)
        wafe = make_wafe()
        browser = DirTree(wafe, root)
        print("browsing", root)
        print("  entries:", browser.entries())

        click_entry(wafe, "src/")
        print("clicked src/  ->", wafe.run_script("gV where label"))
        assert browser.current == os.path.join(root, "src")

        click_entry(wafe, "repro/")
        assert browser.current == os.path.join(root, "src", "repro")
        print("clicked repro/ -> entries:", browser.entries())

        click_entry(wafe, "__init__.py")
        where = wafe.run_script("gV where label")
        print("clicked file  ->", where)
        assert where.startswith("file:")

        click_entry(wafe, "..")
        click_entry(wafe, "..")
        assert browser.current == os.path.abspath(root)
        print("back at the root; directory browser works")
    return 0


if __name__ == "__main__":
    sys.exit(main())
