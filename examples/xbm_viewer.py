#!/usr/bin/env python
"""xbm: "bitmap and pixmap viewer" from the demo list.

Demonstrates the extended String-to-Bitmap converter: setting a Label's
``bitmap`` resource to a *file name* loads the image -- trying the
standard X bitmap (XBM) format first and falling back to Xpm, exactly
as the paper describes.  A List of files on the left, the image on the
right; selecting a file displays it.
"""

import os
import sys
import tempfile

from repro.core import make_wafe
from repro.xlib import close_all_displays
from repro.xlib.colors import alloc_color
from repro.xlib.graphics import window_pixels

CHECKER_XBM = """#define check_width 8
#define check_height 8
static char check_bits[] = {
  0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa };
"""

ARROW_XPM = """/* XPM */
static char * arrow[] = {
"7 5 2 1",
". c white",
"# c red",
"...#...",
"..###..",
".#####.",
"..###..",
"..###.."};
"""


def write_images(directory):
    paths = {}
    for name, text in (("checker.xbm", CHECKER_XBM),
                       ("arrow.xpm", ARROW_XPM)):
        path = os.path.join(directory, name)
        with open(path, "w") as handle:
            handle.write(text)
        paths[name] = path
    return paths


def main():
    close_all_displays()
    with tempfile.TemporaryDirectory() as directory:
        paths = write_images(directory)
        wafe = make_wafe()
        wafe.register_command("showImage", lambda w, argv: (
            w.run_script("sV image bitmap {%s}"
                         % paths[argv[1]]), "")[1])
        wafe.run_script("form f topLevel")
        wafe.run_script("list files f list {%s}"
                        % " ".join(sorted(paths)))
        wafe.run_script('sV files callback "showImage {%s}"')
        wafe.run_script("label image f fromHoriz files width 80 height 60"
                        " label {}")
        wafe.run_script("realize")

        lst = wafe.lookup_widget("files")
        image = wafe.lookup_widget("image")

        def select(name):
            index = lst.items().index(name)
            x, y = lst.window.absolute_origin()
            wafe.app.default_display.click(
                x + 3, y + lst.resources["internalHeight"]
                + index * lst.row_height() + 1)
            wafe.app.process_pending()
            image.redraw()

        select("arrow.xpm")
        pixels = window_pixels(image.window)
        red = int((pixels == alloc_color("red")).sum())
        print("selected arrow.xpm -> %d red pixels painted" % red)
        assert red >= 13  # the arrow shape

        select("checker.xbm")
        bitmap = image.resources["bitmap"]
        print("selected checker.xbm -> bitmap %dx%d, %d bits set"
              % (bitmap.shape[1], bitmap.shape[0], int(bitmap.sum())))
        assert bitmap.shape == (8, 8)
        assert int(bitmap.sum()) == 32  # half the checkerboard

        print("the extended String-to-Bitmap converter handled both"
              " XBM and XPM files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
