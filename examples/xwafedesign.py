#!/usr/bin/env python
"""xwafedesign: the interactive design program (Figure 6), scripted.

Interactive mode is the paper's development story: "The user sees how
the widget tree is built and modified step by step."  This example
drives an :class:`InteractiveSession` the way a designer at the
keyboard would -- creating widgets, inspecting resources, adjusting
them, examining the tree -- and prints the session transcript.
"""

import io
import sys

from repro.core import InteractiveSession, make_wafe
from repro.tcl.lists import string_to_list
from repro.xlib import close_all_displays

SESSION = [
    "wafeVersion",
    "form f topLevel",
    "label title f label {Wafe Designer} borderWidth 0",
    "command ok f fromVert title label OK",
    "command cancel f fromVert title fromHoriz ok label Cancel",
    "realize",
    "echo [getResourceList ok retVal]",
    "gV ok label",
    "sV ok background gray75",
    "gV ok background",
    "widgetTree f",
    "destroyWidget cancel",
    "widgetTree f",
]


def main():
    close_all_displays()
    wafe = make_wafe()
    output = io.StringIO()
    session = InteractiveSession(wafe, output=output)

    print("interactive design session:")
    for command in SESSION:
        result = session.execute(command)
        print("  wafe> %s" % command)
        if result:
            print("        -> %s" % (result if len(result) < 70
                                     else result[:67] + "..."))

    # The tree after deleting 'cancel': only title and ok remain.
    tree = session.execute("widgetTree f")
    name, class_name, children = string_to_list(tree)
    child_names = [string_to_list(c)[0] for c in string_to_list(children)]
    print("final tree under %r (%s): %s" % (name, class_name, child_names))
    assert child_names == ["title", "ok"]
    assert wafe.run_script("widgetExists cancel") == "0"

    # Everything the designer did is in the transcript.
    assert len(session.transcript) == len(SESSION) + 1
    print("transcript of %d interactive commands recorded"
          % len(session.transcript))
    return 0


if __name__ == "__main__":
    sys.exit(main())
