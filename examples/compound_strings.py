#!/usr/bin/env python
"""Figure 3: OSF/Motif compound strings in the mofe build.

The paper's script::

    #!/usr/bin/X11/mofe --f
    mLabel l topLevel \\
        fontList "*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft" \\
        labelString "I'm\\bft bold\\ft and\\rl strange"
    realize

The label renders "I'm" in lucida-medium, " bold" in lucida-bold,
" and" in medium again, and " strange" right-to-left.  We run it in
the Motif build, inspect the parsed segments, and save the rendered
widget as mofe-figure3.xpm.
"""

import sys

from repro.core import make_wafe
from repro.xlib import close_all_displays
from repro.xlib.graphics import window_pixels
from repro.xlib.xpm import write_xpm


def main():
    close_all_displays()
    mofe = make_wafe(build="motif")
    # Brace-quote the labelString so Tcl's backslash escapes stay put.
    mofe.run_script(
        "mLabel l topLevel "
        'fontList "*b&h-lucida-medium-r*14*=ft,'
        '*b&h-lucida-bold-r*14*=bft" '
        "labelString {I'm\\bft bold\\ft and\\rl strange}"
    )
    mofe.run_script("realize")

    label = mofe.lookup_widget("l")
    xmstring = label.compound_string()
    print("compound string segments (font tag, direction, text):")
    for segment in xmstring.segments:
        print("  %-4s %-2s %r" % (segment.tag, segment.direction,
                                  segment.text))
    assert [s.tag for s in xmstring.segments] == ["ft", "bft", "ft", "ft"]
    assert xmstring.segments[-1].direction == "rl"
    assert xmstring.plain_text() == "I'm bold and strange"

    font_list = label.resources["fontList"]
    print("fontList: medium=%s" % font_list.font("ft").name)
    print("          bold  =%s" % font_list.font("bft").name)

    label.redraw()
    screenshot = write_xpm(window_pixels(label.window), name="figure3")
    with open("mofe-figure3.xpm", "w") as handle:
        handle.write(screenshot)
    print("rendered label is %dx%d; screenshot in mofe-figure3.xpm"
          % (label.window.width, label.window.height))
    return 0


if __name__ == "__main__":
    sys.exit(main())
