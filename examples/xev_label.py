#!/usr/bin/env python
"""The paper's xev example, reproduced to the byte.

    label xev topLevel
    action xev override {<KeyPress>: exec(echo %k %a %s)}

"If the input 'w!' is typed on the label widget xev, Wafe prints the
following output to the associated terminal:

    198 w w
    174 Shift_L
    197 ! exclam"
"""

import sys

from repro.core import make_wafe
from repro.xlib import close_all_displays

EXPECTED = ["198 w w", "174 Shift_L", "197 ! exclam"]


def main():
    close_all_displays()
    wafe = make_wafe()
    printed = []
    wafe.interp.write_output = lambda text: printed.append(text.rstrip("\n"))

    wafe.run_script("label xev topLevel")
    wafe.run_script("action xev override {<KeyPress>: exec(echo %k %a %s)}")
    wafe.run_script("realize")

    xev = wafe.lookup_widget("xev")
    wafe.app.default_display.type_string(xev.window, "w!")
    wafe.app.process_pending()

    print("typed \"w!\" on the xev label; Wafe printed:")
    for line in printed:
        print("  " + line)
    assert printed == EXPECTED, (printed, EXPECTED)
    print("matches the paper's output exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
