"""Compatibility shim so ``python setup.py develop`` works offline.

The sandbox used for the reproduction has no network access and no
``wheel`` package, which breaks PEP 517 editable installs.  Either run
``python setup.py develop`` or drop a ``.pth`` file pointing at ``src``
into site-packages; ``pip install -e .`` works on normal machines.
"""

from setuptools import setup

setup()
